"""The shared, versioned model state of the whole lifecycle.

A fitted GenClus model used to die in three disconnected shapes: the
trainer's private ``(theta, gamma, params)`` locals, the serving
artifact's frozen arrays, and the inference engine's growable extension
buffers.  :class:`ModelState` is the one mutable container they all
read and write instead:

* **Training** -- ``GenClus.fit_problem(..., warm_start=state)`` starts
  Algorithm 1 from the state's theta/gamma/attribute parameters instead
  of re-initializing, and :meth:`ModelState.from_result` captures a
  finished fit (including its network and link views, with the cached
  :class:`~repro.core.kernels.PropagationOperator`).
* **Serving** -- the engine's durable deltas
  (:meth:`append_extensions`, link deltas, eviction) mutate the state's
  extension space: a doubling-capacity theta buffer plus live node
  index/type maps, so streaming extends stay amortized ``O(delta)``.
* **Refit** -- :meth:`to_problem` materializes base + extensions into a
  solver-ready :class:`~repro.core.problem.ClusteringProblem` whose link
  views are **patched, not rebuilt**
  (:func:`~repro.hin.views.append_relation_rows` reuses the base
  operator's union pattern in ``O(m + nnz(delta))``), closing the loop:
  fit -> save -> load -> extend -> promote -> fit.

Every mutation bumps :attr:`version`; derived structures (the
materialized problem, the serving view's vocabulary index) are cached
against it and invalidated only when the state actually changed.

A state is either **refit-capable** (its network carries the training
links and attribute observations -- fresh fits, schema-v2 artifacts) or
**serve-only** (schema-v1 artifacts: parameters and memberships but no
training data); serve-only states answer queries and absorb deltas but
refuse :meth:`to_problem`.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from typing import TYPE_CHECKING

import numpy as np

from repro.core.attribute_models import (
    AttributeModel,
    CategoricalModel,
    GaussianModel,
)
from repro.core.problem import ClusteringProblem
from repro.exceptions import StateError
from repro.hin.attributes import NumericAttribute, TextAttribute
from repro.hin.network import HeterogeneousNetwork
from repro.hin.views import (
    RelationMatrices,
    append_relation_rows,
    build_relation_matrices,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (serving)
    from repro.core.result import GenClusResult
    from repro.serving.foldin import FrozenModel, NewNode

_INITIAL_EXTENSION_CAPACITY = 64


def training_data_available(
    network: HeterogeneousNetwork,
    attribute_names: Sequence[str],
    relation_names: Sequence[str],
) -> bool:
    """Whether a network still carries the training data a fit used.

    The single source of truth for refit capability, shared by
    :meth:`ModelState.from_result` and
    :meth:`repro.serving.artifact.ModelArtifact.from_result`: every
    fitted attribute table must be attached, and the links must be
    present too -- unless the fit had no relations at all
    (attributes-only networks refit fine).
    """
    return all(
        network.has_attribute(name) for name in attribute_names
    ) and (network.num_edges() > 0 or not relation_names)


class ModelState:
    """One mutable, versioned container for a model's whole lifecycle.

    Parameters
    ----------
    network:
        The base network.  Refit-capable states carry its training
        links and attribute tables; serve-only states have nodes and
        schema only.
    matrices:
        The base link views (``None`` for serve-only states).  Their
        cached propagation operator is shared with every consumer.
    theta:
        ``(n, K)`` base memberships (copied into the growable buffer).
    gamma:
        ``(R,)`` strengths aligned with ``relation_names``.
    relation_names:
        Relations that carried links in the fit (gamma order).
    attribute_names:
        The fitted attribute subset, in fit order.
    attribute_params:
        Learned component parameters per attribute (the
        :class:`~repro.core.result.GenClusResult` shape).
    refit_capable:
        Whether the state holds enough training data to re-run
        Algorithm 1 (links + observations).
    hydrator:
        Optional zero-argument callable returning ``(network,
        matrices)`` with the full training data, invoked on first
        refit-path use.  Lets a refit-capable state defer decoding its
        training payload (per-edge / per-observation loops) until
        :meth:`to_problem` actually needs it -- a serving engine that
        never promotes pays only the ``O(nK)`` array load.
    copy_theta:
        With the default ``True`` the state owns a private copy of
        ``theta``.  ``False`` adopts the passed buffer **as is** --
        how shard states share one frozen base view, and how a
        memory-mapped artifact's read-only theta becomes the base
        buffer without touching a single page.  Every growth path
        (``append_extensions``, eviction compaction) migrates onto a
        fresh private buffer before writing, so an adopted read-only
        map is never written through.
    on_materialize:
        Optional zero-argument callable invoked exactly once, right
        before the first end-to-end read of the base rows (buffer
        growth, eviction compaction, ``clone_base``, the refit path).
        Mapped artifacts hang their deferred theta checksum
        verification here; the hook is cleared only on success, so a
        failed verification fails every later materialization too.
    """

    def __init__(
        self,
        network: HeterogeneousNetwork,
        matrices: RelationMatrices | None,
        theta: np.ndarray,
        gamma: np.ndarray,
        relation_names: tuple[str, ...],
        attribute_names: tuple[str, ...],
        attribute_params: dict[str, dict],
        refit_capable: bool,
        hydrator=None,
        copy_theta: bool = True,
        on_materialize=None,
    ) -> None:
        theta = np.asarray(theta, dtype=np.float64)
        if theta.ndim != 2 or theta.shape[0] != network.num_nodes:
            raise StateError(
                f"theta must be (num_nodes, K) = ({network.num_nodes}, "
                f"K), got shape {theta.shape}"
            )
        gamma = np.asarray(gamma, dtype=np.float64)
        if gamma.shape != (len(relation_names),):
            raise StateError(
                f"gamma has shape {gamma.shape} but there are "
                f"{len(relation_names)} relations"
            )
        if refit_capable and matrices is None and hydrator is None:
            raise StateError(
                "a refit-capable state requires its link views (or a "
                "hydrator that can supply them)"
            )
        self._hydrator = hydrator
        if matrices is not None and (
            matrices.relation_names != tuple(relation_names)
            or matrices.num_nodes != network.num_nodes
        ):
            raise StateError(
                "link views disagree with the state's relation list or "
                "node count"
            )
        self.network = network
        self.matrices = matrices
        self.gamma = gamma.copy()
        self.relation_names = tuple(relation_names)
        self.attribute_names = tuple(attribute_names)
        self.attribute_params = attribute_params
        self.refit_capable = bool(refit_capable)
        self.version = 0
        self._num_base = network.num_nodes
        if copy_theta:
            if on_materialize is not None:
                # the defensive copy is itself a full read of a
                # possibly-mapped theta: settle verification first
                on_materialize()
                on_materialize = None
            self._theta_buf = theta.copy()
        else:
            self._theta_buf = theta
        self._on_materialize = on_materialize
        self._size = theta.shape[0]
        # extension containers, materialized lazily on the first delta
        self._live_index: dict[object, int] | None = None
        self._live_types: list[str] | None = None
        self._extensions: dict[object, "NewNode"] = {}
        # reverse extension->extension link map: _ext_rev[v] = sources
        # among extension nodes holding an out-link to v (the dependency
        # edges that decide which rows a link delta can move)
        self._ext_rev: dict[object, set[object]] = {}
        self._vocab_index: dict[str, dict[str, int]] | None = None
        self._problem_cache: tuple[
            int, HeterogeneousNetwork, ClusteringProblem
        ] | None = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_result(cls, result: "GenClusResult") -> "ModelState":
        """Capture a finished fit as lifecycle state.

        Refit-capable when the result's network still carries its links
        and the fitted attribute tables (always true straight out of
        ``GenClus.fit``; a result reloaded from a schema-v1 artifact has
        neither and becomes serve-only).
        """
        network = result.network
        attribute_names = tuple(result.attribute_params)
        refit_capable = training_data_available(
            network, attribute_names, result.relation_names
        )
        matrices = None
        if refit_capable:
            matrices = build_relation_matrices(network)
            if matrices.relation_names != tuple(result.relation_names):
                raise StateError(
                    f"network link views yield relations "
                    f"{matrices.relation_names} but the fit recorded "
                    f"{tuple(result.relation_names)}"
                )
        return cls(
            network=network,
            matrices=matrices,
            theta=result.theta,
            gamma=result.gamma,
            relation_names=tuple(result.relation_names),
            attribute_names=attribute_names,
            attribute_params=result.attribute_params,
            refit_capable=refit_capable,
        )

    def clone_base(self) -> "ModelState":
        """A fresh state over this state's base model, extensions
        dropped.

        The clone *shares* the immutable base containers -- network,
        link views (with their cached operator), attribute parameters,
        and the deferred hydrator -- and owns a private copy of the
        base theta rows, so growing the clone (``append_extensions``,
        ``to_problem``) never disturbs this state.  This is how a
        serving cluster assembles the single-engine reference state for
        a cluster-wide refit without mutating the base it keeps
        serving from.
        """
        self._materialize_base()
        clone = ModelState(
            network=self.network,
            matrices=self.matrices,
            theta=self._theta_buf[: self._num_base],
            gamma=self.gamma,
            relation_names=self.relation_names,
            attribute_names=self.attribute_names,
            attribute_params=self.attribute_params,
            refit_capable=self.refit_capable,
            hydrator=self._hydrator,
        )
        clone._vocab_index = self._vocab_index
        return clone

    def partition(self, plan) -> tuple["ModelState", ...]:
        """Materialize per-shard serving states for a
        :class:`~repro.serving.cluster.ShardPlan`.

        Each shard state **owns** its plan rows (responsibility for
        membership reads, eviction, and promotion accounting lives with
        the owner) plus a private, independently growable extension
        space, while **sharing** the frozen base read-only: the network,
        the link views with their cached operator, gamma, the attribute
        component parameters, and -- crucially -- the base theta rows,
        which every shard's fold-in reads as one zero-copy buffer view
        (a transient query may link to *any* base node, so the frozen
        membership rows must stay visible cluster-wide).  The first
        extension appended to a shard migrates it onto its own buffer;
        until then a shard costs ``O(1)`` extra memory.

        Shard states are serve-only on purpose: promotion is a
        cluster-scope operation (all shards' extensions refit together,
        see :meth:`repro.serving.router.ShardedEngine.promote`), so a
        single shard refitting alone would silently fork the base model
        out from under its peers.

        The state must carry no extensions yet (partition the base,
        then route deltas), and ``plan`` must cover exactly this
        state's rows.
        """
        self._check_partitionable(plan)
        return tuple(
            self._shard_state() for _ in range(plan.n_shards)
        )

    def partition_shard(self, plan, shard_id: int) -> "ModelState":
        """Materialize a single shard's serving state.

        The same construction :meth:`partition` performs for every
        shard, for exactly one -- the primitive a supervised serving
        cluster uses to rebuild one broken shard from the shared frozen
        base (and then replay its durable deltas) without touching its
        healthy peers.  The rebuilt state shares the frozen base buffer
        with every state previously partitioned from this one, so a
        recovered shard serves bit-identical answers.
        """
        self._check_partitionable(plan)
        if not 0 <= shard_id < plan.n_shards:
            raise StateError(
                f"shard_id must lie in 0..{plan.n_shards - 1}, "
                f"got {shard_id}"
            )
        return self._shard_state()

    def _check_partitionable(self, plan) -> None:
        if self.num_extension_nodes:
            raise StateError(
                f"partition requires a pristine base state; this one "
                f"carries {self.num_extension_nodes} extension node(s) "
                f"(promote or evict them first)"
            )
        if plan.num_rows != self.num_nodes:
            raise StateError(
                f"shard plan covers {plan.num_rows} rows but the state "
                f"has {self.num_nodes}"
            )

    def _shard_state(self) -> "ModelState":
        # the frozen base rows are shared as one buffer view across
        # all shards -- a memory-mapped base stays mapped, and each
        # shard inherits the deferred-verification hook (idempotent
        # and thread-safe, so whichever shard materializes first pays
        # the CRC pass); the first append_extensions call grows onto
        # a private buffer
        shard = ModelState(
            network=self.network,
            matrices=self.matrices,
            theta=self._theta_buf[: self._num_base],
            gamma=self.gamma,
            relation_names=self.relation_names,
            attribute_names=self.attribute_names,
            attribute_params=self.attribute_params,
            refit_capable=False,
            hydrator=None,
            copy_theta=False,
            on_materialize=self._on_materialize,
        )
        shard._vocab_index = self._vocab_index
        return shard

    # ------------------------------------------------------------------
    # shape + views
    # ------------------------------------------------------------------
    @property
    def n_clusters(self) -> int:
        return int(self._theta_buf.shape[1])

    @property
    def num_base_nodes(self) -> int:
        return self._num_base

    @property
    def num_extension_nodes(self) -> int:
        return self._size - self._num_base

    @property
    def num_nodes(self) -> int:
        return self._size

    @property
    def theta(self) -> np.ndarray:
        """Live ``(num_nodes, K)`` membership view (base + extensions)."""
        return self._theta_buf[: self._size]

    @property
    def node_index(self) -> Mapping[object, int]:
        """Live ``{node id: theta row}`` over base + extensions."""
        if self._live_index is not None:
            return self._live_index
        return self.network.node_index_view

    @property
    def node_types(self) -> Sequence[str]:
        """Live per-row object types over base + extensions."""
        if self._live_types is not None:
            return self._live_types
        return self.network.node_types_view

    def is_extension(self, node: object) -> bool:
        return node in self._extensions

    def extension_nodes(self) -> tuple[object, ...]:
        """Extension node ids in served row order."""
        return tuple(self._extensions)

    def extension_spec(self, node: object) -> "NewNode":
        return self._extensions[node]

    def extension_link_count(self) -> int:
        return sum(
            len(spec.links) for spec in self._extensions.values()
        )

    def extension_dependants(self, node: object) -> frozenset:
        """Extension nodes holding an out-link to ``node`` (the nodes
        whose re-folds would need its membership row)."""
        return frozenset(self._ext_rev.get(node, ()))

    def block_plan(self, block_size: int | None = None) -> "BlockPlan":
        """The canonical block decomposition of the served row space.

        One derivation shared by every consumer of the blocked shape
        (``execution_shape`` telemetry, ``ShardPlan.from_state``, the
        similarity top-k scan): the plan cached on the base link views'
        operator when one exists (the plan every training-side kernel
        shares), grown to cover live extensions, else a fresh
        shape-only plan.  Pure function of the current shapes.
        """
        # local import: repro.core.kernels does not import state
        from repro.core.kernels import BlockPlan

        k = self.n_clusters
        if self.matrices is not None:
            plan = self.matrices.block_plan(k, block_size)
            if plan.num_rows != self.num_nodes:
                plan = plan.grown(self.num_nodes - plan.num_rows)
        else:
            plan = BlockPlan.for_shape(self.num_nodes, k, block_size)
        return plan

    def execution_shape(
        self, block_size: int | None = None
    ) -> dict[str, int]:
        """The blocked-execution decomposition of the served index space.

        Telemetry for serving operators (surfaced through
        ``InferenceEngine.info()``): how many row blocks the current
        base + extension space splits into and how many rows each block
        carries.
        """
        plan = self.block_plan(block_size)
        return {
            "block_rows": plan.block_rows,
            "block_count": plan.num_blocks,
            "num_rows": plan.num_rows,
        }

    @property
    def theta_capacity(self) -> int:
        """Allocated rows of the growable membership buffer."""
        return int(self._theta_buf.shape[0])

    @property
    def theta_bytes(self) -> int:
        """Bytes held by the membership buffer (including slack)."""
        return int(self._theta_buf.nbytes)

    @property
    def theta_mapped(self) -> bool:
        """Whether the membership buffer is still a lazily-paged
        read-only memory map (no growth path has migrated it onto a
        private allocation yet)."""
        return _is_mapped(self._theta_buf)

    def memory_info(self) -> dict[str, object]:
        """Membership-buffer memory accounting for telemetry.

        Splits :attr:`theta_bytes` into **mapped** bytes (backed by
        the artifact file through the OS page cache; resident only
        where queries have touched pages) and **resident** bytes
        (private allocations this process owns outright).  Surfaced
        through ``engine.info()``'s ``memory`` section.
        """
        mapped = self.theta_mapped
        nbytes = int(self._theta_buf.nbytes)
        return {
            "theta_mapped": mapped,
            "theta_mapped_bytes": nbytes if mapped else 0,
            "theta_resident_bytes": 0 if mapped else nbytes,
            "theta_capacity_rows": int(self._theta_buf.shape[0]),
        }

    def _materialize_base(self) -> None:
        """Settle any deferred base-theta verification before the
        first end-to-end read of the base rows.

        The hook (a mapped artifact's lazy CRC32 check) is cleared
        only on success: a corrupt mapped theta keeps failing every
        later materialization attempt instead of being read once and
        trusted forever.
        """
        if self._on_materialize is not None:
            hook = self._on_materialize
            hook()
            self._on_materialize = None

    def _touch(self) -> None:
        self.version += 1

    def frozen_view(self) -> "FrozenModel":
        """The read-only serving view fold-in scores against.

        A cheap façade over live state: theta is the buffer window and
        the index/type maps are the live containers, so a fresh view
        per delta costs O(1).  The per-model vocabulary index is cached
        on the state and shared across views.
        """
        # local import: repro.serving depends on repro.core, not back
        from repro.serving.foldin import FrozenModel

        view = FrozenModel(
            theta=self.theta,
            gamma=self.gamma,
            relation_names=self.relation_names,
            relation_types={
                rel.name: (rel.source, rel.target)
                for rel in self.network.schema.relations
            },
            object_types=tuple(
                t.name for t in self.network.schema.object_types
            ),
            node_index=self.node_index,
            node_types=self.node_types,
            attribute_params=self.attribute_params,
        )
        if self._vocab_index is None:
            self._vocab_index = view.vocabulary_index
        else:
            view.__dict__["vocabulary_index"] = self._vocab_index
        return view

    # ------------------------------------------------------------------
    # extension-space mutation (the serving delta path)
    # ------------------------------------------------------------------
    def _materialize_live(self) -> None:
        if self._live_index is None:
            self._live_index = self.network.node_index
            self._live_types = list(self.network.node_types_view)

    def append_extensions(
        self, specs: Sequence["NewNode"], theta_rows: np.ndarray
    ) -> None:
        """Append folded-in nodes to the served index space.

        Amortized ``O(len(specs))``: the theta buffer doubles its
        capacity geometrically and the index/type containers are
        mutated in place.  ``theta_rows`` are the nodes' posterior
        memberships, aligned with ``specs``.
        """
        if not specs:
            return
        self._materialize_live()
        k = self.n_clusters
        needed = self._size + len(specs)
        if needed > self._theta_buf.shape[0]:
            if self._theta_buf.shape[0] == self._num_base:
                # first delta: reserve a small extension region instead
                # of doubling the whole base allocation
                capacity = max(
                    needed,
                    self._num_base + _INITIAL_EXTENSION_CAPACITY,
                )
            else:
                capacity = max(needed, 2 * self._theta_buf.shape[0])
            # growth copies the base rows end to end: a mapped base
            # verifies its deferred checksum first, then migrates to
            # a private buffer (the map itself is never written)
            self._materialize_base()
            grown = np.empty((capacity, k))
            grown[: self._size] = self._theta_buf[: self._size]
            self._theta_buf = grown
        self._theta_buf[self._size : needed] = theta_rows
        for offset, spec in enumerate(specs):
            self._live_index[spec.node] = self._size + offset
            self._live_types.append(spec.object_type)
            self._extensions[spec.node] = spec
        self._size = needed
        for spec in specs:
            self._index_reverse_links(spec)
        self._touch()

    def _index_reverse_links(self, spec: "NewNode") -> None:
        for _, target, _ in spec.links:
            if target in self._extensions:
                self._ext_rev.setdefault(target, set()).add(spec.node)

    def touched_component(
        self, sources: Iterable[object]
    ) -> list[object]:
        """Extension nodes whose fixed point a delta on ``sources`` can
        move: the reverse-reachable closure over extension->extension
        links, in served row order.

        A node's fold-in row depends only on its own observations and
        the memberships of its out-link targets, so new links on
        ``sources`` can shift exactly the nodes that reach a source via
        out-links -- everything else keeps its row verbatim.
        """
        touched = set(sources)
        frontier = list(touched)
        while frontier:
            node = frontier.pop()
            for dependant in self._ext_rev.get(node, ()):
                if dependant not in touched:
                    touched.add(dependant)
                    frontier.append(dependant)
        # order by served row -- O(|touched| log |touched|), never a
        # scan of the whole extension space
        index = self.node_index
        return sorted(touched, key=index.__getitem__)

    def commit_link_delta(
        self, updated: Mapping[object, "NewNode"]
    ) -> None:
        """Replace extension specs after a validated link delta."""
        for node, spec in updated.items():
            if node not in self._extensions:
                raise StateError(
                    f"node {node!r} is not an extension of this state"
                )
            self._extensions[node] = spec
            self._index_reverse_links(spec)
        self._touch()

    def replace_extension_rows(
        self, nodes: Sequence[object], theta_rows: np.ndarray
    ) -> None:
        """Overwrite the served rows of the given extension nodes."""
        assert self._live_index is not None
        for node, row in zip(nodes, theta_rows):
            self._theta_buf[self._live_index[node]] = row
        self._touch()

    def evict_extensions(self, nodes: Iterable[object]) -> None:
        """Drop extension nodes and compact the served index space.

        O(num_nodes): the theta buffer, index, and type containers are
        rebuilt without the evicted rows.  Eviction of a node that
        another (surviving) extension node links to is refused -- its
        membership would be needed by later re-folds of the survivor.
        """
        evicted = set(nodes)
        if not evicted:
            return
        unknown = [n for n in evicted if n not in self._extensions]
        if unknown:
            raise StateError(
                f"cannot evict non-extension nodes: {unknown!r}"
            )
        for node in evicted:
            blocked = self._ext_rev.get(node, set()) - evicted
            if blocked:
                raise StateError(
                    f"cannot evict {node!r}: surviving extension nodes "
                    f"{sorted(map(repr, blocked))} link to it"
                )
        assert self._live_index is not None
        k = self.n_clusters
        survivors = [
            node for node in self._extensions if node not in evicted
        ]
        self._materialize_base()
        compact = np.empty(
            (self._num_base + len(survivors), k)
        )
        compact[: self._num_base] = self._theta_buf[: self._num_base]
        index = self.network.node_index
        types = list(self.network.node_types_view)
        kept: dict[object, "NewNode"] = {}
        for row, node in enumerate(survivors, start=self._num_base):
            compact[row] = self._theta_buf[self._live_index[node]]
            index[node] = row
            types.append(self._extensions[node].object_type)
            kept[node] = self._extensions[node]
        self._theta_buf = compact
        self._size = compact.shape[0]
        self._live_index = index
        self._live_types = types
        self._extensions = kept
        self._ext_rev = {}
        for spec in kept.values():
            self._index_reverse_links(spec)
        self._touch()

    # ------------------------------------------------------------------
    # materialization (the refit path)
    # ------------------------------------------------------------------
    def _require_refit_capable(self) -> None:
        if not self.refit_capable:
            raise StateError(
                "this state is serve-only (no training links or "
                "attribute observations -- e.g. loaded from a schema-v1 "
                "artifact); it can serve queries but not refit"
            )
        # the refit warm-starts from theta end to end: a mapped base
        # settles its deferred verification before the solver reads it
        self._materialize_base()
        self._ensure_hydrated()

    def _ensure_hydrated(self) -> None:
        """Decode the deferred training payload on first refit use.

        Swaps in the hydrator's full network + link views.  The node
        set and order are identical to the serve-time network, so the
        live extension containers (index/type maps, theta buffer) stay
        valid untouched.
        """
        if self._hydrator is None:
            return
        network, matrices = self._hydrator()
        self._hydrator = None
        if network.num_nodes != self._num_base:
            raise StateError(  # pragma: no cover - defensive
                "hydrated network node count disagrees with the state"
            )
        if matrices is not None and (
            matrices.relation_names != self.relation_names
            or matrices.num_nodes != self._num_base
        ):
            raise StateError(  # pragma: no cover - defensive
                "hydrated link views disagree with the state's "
                "relation list or node count"
            )
        self.network = network
        self.matrices = matrices

    def hydrate(self) -> None:
        """Decode any deferred training payload now (idempotent).

        Artifact-backed states defer rebuilding their link views until
        the refit path needs them; callers that want the views earlier
        -- e.g. the ``shard-plan`` CLI reporting per-shard link load --
        can force the decode here.  Serve-only states are untouched.
        """
        if self.refit_capable:
            self._ensure_hydrated()

    def materialize_network(self) -> HeterogeneousNetwork:
        """Base + extensions as one standalone network.

        The base network is left untouched: a fresh container re-adds
        its nodes, links, and attribute tables, then the extension
        nodes with their accumulated links and observations.  Extension
        text observations are filtered to the *training* vocabulary
        (warm-started component parameters fix the columns), matching
        what fold-in scored.
        """
        self._require_refit_capable()
        return self._materialized()[0]

    def to_problem(self) -> ClusteringProblem:
        """Compile base + extensions into a solver-ready problem.

        The link views are grown from the base fit's by appending the
        extension rows (:func:`~repro.hin.views.append_relation_rows`),
        so the compiled problem's propagation operator reuses the
        training union pattern instead of rebuilding it.  The result is
        cached against :attr:`version` -- repeated calls between
        mutations are free.
        """
        self._require_refit_capable()
        return self._materialized()[1]

    def _materialized(
        self,
    ) -> tuple[HeterogeneousNetwork, ClusteringProblem]:
        cache = self._problem_cache
        if cache is not None and cache[0] == self.version:
            return cache[1], cache[2]
        network = self._copy_network_with_extensions()
        matrices = self._grow_matrices()
        if matrices.num_nodes != network.num_nodes:
            raise StateError(  # pragma: no cover - defensive
                "materialized views and network disagree on node count"
            )
        node_index = network.node_index
        models: list[AttributeModel] = []
        for name in self.attribute_names:
            attribute = network.attribute(name)
            if isinstance(attribute, TextAttribute):
                models.append(
                    CategoricalModel(
                        attribute.compile(node_index),
                        n_clusters=self.n_clusters,
                        num_nodes=network.num_nodes,
                    )
                )
            else:
                models.append(
                    GaussianModel(
                        attribute.compile(node_index),
                        n_clusters=self.n_clusters,
                        num_nodes=network.num_nodes,
                    )
                )
        problem = ClusteringProblem(
            network=network,
            matrices=matrices,
            attribute_models=tuple(models),
            attribute_names=self.attribute_names,
            n_clusters=self.n_clusters,
        )
        self._problem_cache = (self.version, network, problem)
        return network, problem

    def _copy_network_with_extensions(self) -> HeterogeneousNetwork:
        base = self.network
        # O(n + |E|) structural copy -- no per-edge re-validation of
        # links the base network already guaranteed
        network = base.copy()
        for spec in self._extensions.values():
            network.add_node(spec.node, spec.object_type)
        for spec in self._extensions.values():
            for relation, target, weight in spec.links:
                if weight > 0.0:
                    network.add_edge(
                        spec.node, target, relation, weight
                    )
        for name in base.attribute_names:
            network.add_attribute(self._copy_attribute(name))
        return network

    def _copy_attribute(self, name: str):
        source = self.network.attribute(name)
        fitted = name in self.attribute_names
        if isinstance(source, TextAttribute):
            copy = TextAttribute(
                name, frozen_vocabulary=source.vocabulary
            )
            for node in source.nodes_with_observations():
                copy.add_counts(node, source.bag_of(node))
            if fitted:
                vocabulary = set(source.vocabulary)
                for spec in self._extensions.values():
                    bag = _spec_bag(spec, name)
                    in_vocab = {
                        term: count
                        for term, count in bag.items()
                        if term in vocabulary and count > 0
                    }
                    if in_vocab:
                        copy.add_counts(spec.node, in_vocab)
            return copy
        assert isinstance(source, NumericAttribute)
        copy = NumericAttribute(name)
        for node in source.nodes_with_observations():
            copy.add_values(node, source.values_of(node))
        if fitted:
            for spec in self._extensions.values():
                values = spec.numeric.get(name)
                if values:
                    copy.add_values(spec.node, values)
        return copy

    def _grow_matrices(self) -> RelationMatrices:
        assert self.matrices is not None
        index = self.node_index
        links: dict[str, list[tuple[int, int, float]]] = {}
        for spec in self._extensions.values():
            source = index[spec.node]
            for relation, target, weight in spec.links:
                if weight > 0.0:
                    links.setdefault(relation, []).append(
                        (source, index[target], weight)
                    )
        return append_relation_rows(
            self.matrices, self.num_extension_nodes, links
        )


def _is_mapped(array: np.ndarray) -> bool:
    """Whether ``array`` is (a view into) a ``np.memmap``.

    ``np.asarray``/slicing of a memmap yield plain ``ndarray`` views
    whose ``.base`` chain bottoms out at the map, so the chain is
    walked rather than the outermost type checked.
    """
    current = array
    while current is not None:
        if isinstance(current, np.memmap):
            return True
        current = getattr(current, "base", None)
    return False


def _spec_bag(spec: "NewNode", attribute: str) -> dict[str, float]:
    """A NewNode text payload as ``{term: count}`` (specs store either
    a counts mapping or a materialized token tuple)."""
    bag = spec.text.get(attribute)
    if bag is None:
        return {}
    if isinstance(bag, Mapping):
        return dict(bag)
    counts: dict[str, float] = {}
    for token in bag:
        term = str(token)
        counts[term] = counts.get(term, 0.0) + 1.0
    return counts
