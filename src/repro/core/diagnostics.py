"""Per-iteration diagnostics of a GenClus run.

The paper's Fig. 10 plots clustering accuracy and the gamma trajectory
over outer iterations; :class:`RunHistory` records exactly the data needed
to regenerate that figure from any fit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True, slots=True)
class IterationRecord:
    """State after one outer iteration of Algorithm 1.

    Attributes
    ----------
    outer_iteration:
        1-based outer iteration number (0 records the initial state).
    gamma:
        Strength vector after the iteration (copy).
    g1_value:
        Cluster-optimization objective after the EM step.
    g2_value:
        Pseudo-log-likelihood after the strength step (NaN for the
        initial record).
    em_iterations:
        Inner EM iterations used.
    newton_iterations:
        Inner Newton iterations used.
    em_seconds:
        Wall-clock seconds in the EM step.  Since the ``repro.obs``
        layer landed, this is the measured duration of the fit's
        ``em_sweep`` tracing span (identical data, one clock source);
        with tracing enabled the same interval also appears in the
        retained trace tree.
    newton_seconds:
        Wall-clock seconds in the Newton step -- the duration of the
        fit's ``newton`` span, like ``em_seconds``.
    em_objective_trace:
        ``g1`` after every inner EM iteration of this outer step; empty
        unless the fit ran with
        :attr:`~repro.core.config.GenClusConfig.track_em_objective`.
    """

    outer_iteration: int
    gamma: np.ndarray
    g1_value: float
    g2_value: float
    em_iterations: int = 0
    newton_iterations: int = 0
    em_seconds: float = 0.0
    newton_seconds: float = 0.0
    em_objective_trace: tuple[float, ...] = ()


@dataclass
class RunHistory:
    """Ordered iteration records plus convenience accessors."""

    relation_names: tuple[str, ...]
    records: list[IterationRecord] = field(default_factory=list)

    def append(self, record: IterationRecord) -> None:
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def gamma_trajectory(self) -> np.ndarray:
        """``(n_records, R)`` array of gamma over iterations (Fig. 10b)."""
        return np.stack([record.gamma for record in self.records])

    def gamma_series(self, relation: str) -> np.ndarray:
        """One relation's strength over iterations."""
        r = self.relation_names.index(relation)
        return self.gamma_trajectory()[:, r]

    def g1_series(self) -> np.ndarray:
        return np.asarray([record.g1_value for record in self.records])

    def em_objective_traces(self) -> tuple[tuple[float, ...], ...]:
        """Inner ``g1`` traces per outer iteration (empty when the fit
        ran without ``track_em_objective``)."""
        return tuple(record.em_objective_trace for record in self.records)

    def total_em_seconds(self) -> float:
        return float(sum(record.em_seconds for record in self.records))

    def mean_em_seconds_per_inner_iteration(self) -> float:
        """Average wall-clock per *inner* EM iteration (Fig. 11 metric)."""
        total_iters = sum(record.em_iterations for record in self.records)
        if total_iters == 0:
            return 0.0
        return self.total_em_seconds() / total_iters

    def describe(self) -> str:
        """Readable per-iteration table (gamma, objectives, costs)."""
        header = (
            f"{'iter':>4} {'g1':>14} {'g2prime':>14} "
            + " ".join(f"{name:>12}" for name in self.relation_names)
        )
        lines = [header]
        for record in self.records:
            gammas = " ".join(f"{g:>12.4f}" for g in record.gamma)
            lines.append(
                f"{record.outer_iteration:>4} {record.g1_value:>14.2f} "
                f"{record.g2_value:>14.2f} {gammas}"
            )
        return "\n".join(lines)
