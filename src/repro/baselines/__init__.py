"""Baseline clustering methods compared against GenClus in Section 5.

All baselines see the heterogeneous network through a *homogenized* lens
-- every link type flattened with strength 1 -- because "none of these
baselines is capable of leveraging different link types" (Section 5.2.1).

* :mod:`repro.baselines.plsa` -- vanilla PLSA [11], the text substrate of
  the two network-topic baselines.
* :mod:`repro.baselines.netplsa` -- NetPLSA [18]: PLSA with graph-
  Laplacian smoothing of topic proportions.
* :mod:`repro.baselines.itopicmodel` -- iTopicModel [22]: topic model
  with a neighbour-averaged prior on topic proportions.
* :mod:`repro.baselines.kmeans` -- k-means with k-means++ seeding, the
  attribute-only weather baseline.
* :mod:`repro.baselines.spectral` -- the spectral framework of [20] with
  modularity + attribute similarity at equal weights ([26] variant).
* :mod:`repro.baselines.interpolation` -- neighbour-mean imputation used
  to give the attribute-only baselines a complete attribute matrix.
"""

from repro.baselines.interpolation import interpolate_numeric_attributes
from repro.baselines.itopicmodel import ITopicModel
from repro.baselines.kmeans import KMeansResult, kmeans
from repro.baselines.netplsa import NetPLSA
from repro.baselines.plsa import PLSA, PLSAResult
from repro.baselines.spectral import SpectralCombine

__all__ = [
    "ITopicModel",
    "KMeansResult",
    "NetPLSA",
    "PLSA",
    "PLSAResult",
    "SpectralCombine",
    "interpolate_numeric_attributes",
    "kmeans",
]
