"""iTopicModel baseline (Sun, Han, Gao, Yu, ICDM 2009 [22]).

A topic model for document networks: each document's topic proportion
has a Markov-random-field prior tying it to its neighbours', and the
joint of text and proportions is maximized by EM whose theta update mixes
the neighbour average with the document's own term responsibilities --
structurally the same update as GenClus's Eq. 10 but with a *single*
homogenized link type fixed at strength 1 (the GenClus paper's protocol
for this baseline, Section 5.2.1).  The comparison isolates exactly what
GenClus adds: learned, per-type strengths.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro.exceptions import ConfigError
from repro.hin.network import HeterogeneousNetwork
from repro.hin.views import build_relation_matrices


class ITopicModel:
    """iTopicModel on a homogenized heterogeneous network.

    Parameters
    ----------
    n_topics:
        Number of topics ``K``.
    link_weight:
        Fixed strength of the (single, flattened) link type; 1.0 matches
        the GenClus paper's baseline protocol.
    max_iterations:
        EM iteration cap.
    tol:
        Stop when ``max |theta_t - theta_{t-1}|`` drops below this.
    seed:
        RNG seed.
    """

    def __init__(
        self,
        n_topics: int,
        link_weight: float = 1.0,
        max_iterations: int = 100,
        tol: float = 1e-4,
        seed: int | None = None,
    ) -> None:
        if n_topics < 1:
            raise ConfigError(f"n_topics must be >= 1, got {n_topics}")
        if link_weight < 0:
            raise ConfigError(
                f"link_weight must be >= 0, got {link_weight}"
            )
        self.n_topics = n_topics
        self.link_weight = link_weight
        self.max_iterations = max_iterations
        self.tol = tol
        self.seed = seed

    def fit_network(
        self, network: HeterogeneousNetwork, attribute: str
    ) -> np.ndarray:
        """Cluster a network by one text attribute; returns ``(n, K)``."""
        text = network.text_attribute(attribute)
        compiled = text.compile(network.node_index)
        n = network.num_nodes
        if compiled.vocab_size == 0:
            raise ConfigError(
                f"attribute {attribute!r} has an empty vocabulary"
            )
        matrices = build_relation_matrices(network)
        flattened = matrices.combined()  # every relation at weight 1
        rng = np.random.default_rng(self.seed)
        theta = rng.dirichlet(np.ones(self.n_topics), size=n)
        beta = rng.dirichlet(
            np.ones(compiled.vocab_size), size=self.n_topics
        )
        coo = compiled.counts.tocoo()
        rows, cols, vals = coo.row, coo.col, coo.data
        node_indices = compiled.node_indices

        for _ in range(self.max_iterations):
            theta_obs = theta[node_indices]
            denom = np.einsum(
                "nk,nk->n", theta_obs[rows], beta[:, cols].T
            )
            denom = np.maximum(denom, 1e-300)
            ratio = sparse.csr_matrix(
                (vals / denom, (rows, cols)),
                shape=compiled.counts.shape,
            )
            update = self.link_weight * (flattened @ theta)
            update[node_indices] += theta_obs * (ratio @ beta.T)
            row_sums = update.sum(axis=1)
            dead = row_sums <= 0
            if dead.any():
                update[dead] = theta[dead]
                row_sums = update.sum(axis=1)
            theta_new = update / row_sums[:, None]
            beta = beta * (theta_obs.T @ ratio) + 1e-10
            beta /= beta.sum(axis=1, keepdims=True)
            delta = float(np.max(np.abs(theta_new - theta)))
            theta = theta_new
            if delta < self.tol:
                break
        return theta
