"""Spectral clustering combining network modularity with attributes.

The weather baseline "SpectralCombine" of Section 5.2.1: the framework of
Shiga, Takigawa, Mamitsuka (KDD 2007 [20]), which combines a network
objective with a numerical-attribute objective, using the modularity
matrix for the network part and -- following Zha et al. [26] -- the
spectral relaxation of k-means (the Gram matrix of standardized
attributes) for the attribute part.  Both parts get equal weights, as
the GenClus paper specifies.

Pipeline
--------
1. Homogenize the network into a symmetric adjacency ``W``.
2. Modularity matrix ``B = (W - d d^T / 2m) / 2m``.
3. Attribute Gram matrix ``G = X X^T / n`` from standardized features.
4. ``M = B + G`` (equal weights); take the top-K eigenvectors.
5. Row-normalize the embedding and run k-means.
"""

from __future__ import annotations

import numpy as np
from scipy import linalg

from repro.baselines.interpolation import standardize
from repro.baselines.kmeans import kmeans
from repro.exceptions import ConfigError
from repro.hin.network import HeterogeneousNetwork
from repro.hin.views import build_relation_matrices


class SpectralCombine:
    """Modularity + attribute spectral clustering.

    Parameters
    ----------
    n_clusters:
        Number of clusters ``K``.
    network_weight, attribute_weight:
        Combination weights of the two matrices (equal by default,
        matching the paper's protocol).
    seed:
        Seed for the k-means stage.
    """

    def __init__(
        self,
        n_clusters: int,
        network_weight: float = 1.0,
        attribute_weight: float = 1.0,
        seed: int | None = None,
    ) -> None:
        if n_clusters < 1:
            raise ConfigError(f"n_clusters must be >= 1, got {n_clusters}")
        if network_weight < 0 or attribute_weight < 0:
            raise ConfigError("combination weights must be >= 0")
        self.n_clusters = n_clusters
        self.network_weight = network_weight
        self.attribute_weight = attribute_weight
        self.seed = seed

    def fit_network(
        self,
        network: HeterogeneousNetwork,
        features: np.ndarray,
    ) -> np.ndarray:
        """Cluster a network with a complete feature matrix.

        Parameters
        ----------
        network:
            Supplies the (homogenized) link structure.
        features:
            ``(n, d)`` complete attribute matrix (use
            :func:`repro.baselines.interpolation.interpolate_numeric_attributes`
            to build one from incomplete attributes first).

        Returns
        -------
        numpy.ndarray
            ``(n,)`` hard cluster labels.
        """
        features = np.asarray(features, dtype=np.float64)
        n = network.num_nodes
        if features.shape[0] != n:
            raise ConfigError(
                f"features have {features.shape[0]} rows for a network "
                f"of {n} nodes"
            )
        combined = self._combined_matrix(network, features)
        # top-K eigenvectors of the symmetric combined matrix
        eigenvalues, eigenvectors = linalg.eigh(combined)
        order = np.argsort(eigenvalues)[::-1][: self.n_clusters]
        embedding = eigenvectors[:, order]
        norms = np.linalg.norm(embedding, axis=1, keepdims=True)
        embedding = embedding / np.maximum(norms, 1e-12)
        result = kmeans(
            embedding, self.n_clusters, seed=self.seed, n_init=5
        )
        return result.labels

    def _combined_matrix(
        self, network: HeterogeneousNetwork, features: np.ndarray
    ) -> np.ndarray:
        n = network.num_nodes
        matrices = build_relation_matrices(network)
        flattened = matrices.combined()
        symmetric = np.asarray((flattened + flattened.T).todense())
        degrees = symmetric.sum(axis=1)
        two_m = degrees.sum()
        if two_m > 0:
            modularity = (
                symmetric - np.outer(degrees, degrees) / two_m
            ) / two_m
        else:
            modularity = np.zeros((n, n))
        standardized = standardize(features)
        gram = (standardized @ standardized.T) / max(n, 1)
        return (
            self.network_weight * modularity
            + self.attribute_weight * gram
        )
