"""Probabilistic Latent Semantic Analysis (Hofmann 1999, [11]).

The text-only substrate shared by the NetPLSA and iTopicModel baselines.
Documents are rows of a sparse count matrix; EM alternates document-topic
proportions ``theta`` and topic-term distributions ``beta`` exactly as in
the aspect model:

    E: p(z=k | d, l)  propto  theta_dk * beta_kl
    M: theta_dk  propto  sum_l c_dl p(z=k | d, l)
       beta_kl   propto  sum_d c_dl p(z=k | d, l)
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse

from repro.exceptions import ConfigError


@dataclass(frozen=True, slots=True)
class PLSAResult:
    """Fitted PLSA parameters.

    Attributes
    ----------
    theta:
        ``(n_docs, K)`` document-topic proportions.
    beta:
        ``(K, vocab)`` topic-term distributions.
    log_likelihood:
        Final data log-likelihood.
    iterations:
        EM iterations run.
    """

    theta: np.ndarray
    beta: np.ndarray
    log_likelihood: float
    iterations: int


class PLSA:
    """Vanilla PLSA via EM.

    Parameters
    ----------
    n_topics:
        Number of topics ``K``.
    max_iterations:
        EM iteration cap.
    tol:
        Stop when the log-likelihood improves by less than this.
    seed:
        RNG seed for initialization.
    smoothing:
        Additive floor applied in both M-steps to keep all
        probabilities strictly positive.
    """

    def __init__(
        self,
        n_topics: int,
        max_iterations: int = 100,
        tol: float = 1e-6,
        seed: int | None = None,
        smoothing: float = 1e-10,
    ) -> None:
        if n_topics < 1:
            raise ConfigError(f"n_topics must be >= 1, got {n_topics}")
        if max_iterations < 1:
            raise ConfigError(
                f"max_iterations must be >= 1, got {max_iterations}"
            )
        self.n_topics = n_topics
        self.max_iterations = max_iterations
        self.tol = tol
        self.seed = seed
        self.smoothing = smoothing

    def fit(self, counts: sparse.spmatrix) -> PLSAResult:
        """Fit on a ``(n_docs, vocab)`` sparse count matrix."""
        counts = sparse.csr_matrix(counts, dtype=np.float64)
        n_docs, vocab = counts.shape
        if n_docs == 0 or vocab == 0:
            raise ConfigError("count matrix must be non-empty")
        rng = np.random.default_rng(self.seed)
        theta = rng.dirichlet(np.ones(self.n_topics), size=n_docs)
        beta = rng.dirichlet(np.ones(vocab), size=self.n_topics)
        coo = counts.tocoo()
        rows, cols, vals = coo.row, coo.col, coo.data

        previous = -np.inf
        iterations = 0
        for iterations in range(1, self.max_iterations + 1):
            theta, beta, log_likelihood = _em_iteration(
                theta, beta, counts, rows, cols, vals, self.smoothing
            )
            if abs(log_likelihood - previous) < self.tol:
                break
            previous = log_likelihood
        return PLSAResult(
            theta=theta,
            beta=beta,
            log_likelihood=log_likelihood,
            iterations=iterations,
        )


def _em_iteration(
    theta: np.ndarray,
    beta: np.ndarray,
    counts: sparse.csr_matrix,
    rows: np.ndarray,
    cols: np.ndarray,
    vals: np.ndarray,
    smoothing: float,
) -> tuple[np.ndarray, np.ndarray, float]:
    """One PLSA EM sweep using the sparse-ratio factorization."""
    denom = np.einsum("nk,nk->n", theta[rows], beta[:, cols].T)
    denom = np.maximum(denom, 1e-300)
    ratio = sparse.csr_matrix(
        (vals / denom, (rows, cols)), shape=counts.shape
    )
    theta_new = theta * (ratio @ beta.T) + smoothing
    theta_new /= theta_new.sum(axis=1, keepdims=True)
    beta_new = beta * (theta.T @ ratio) + smoothing
    beta_new /= beta_new.sum(axis=1, keepdims=True)
    log_likelihood = float(np.dot(vals, np.log(denom)))
    return theta_new, beta_new, log_likelihood
