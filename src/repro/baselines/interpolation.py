"""Neighbour-mean interpolation of incomplete numeric attributes.

The attribute-only weather baselines cannot handle incompleteness, so
the GenClus paper gives them a "regular 2-dimensional attribute, by
using the mean of all the observations of its neighbors and itself"
(Section 5.2.1).  :func:`interpolate_numeric_attributes` reproduces that
imputation: for each node and each attribute, average every observation
held by the node itself and its (homogenized) out-neighbours; nodes whose
whole neighbourhood is silent fall back to the attribute's global mean.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import AttributeSpecError
from repro.hin.network import HeterogeneousNetwork
from repro.hin.views import build_relation_matrices


def interpolate_numeric_attributes(
    network: HeterogeneousNetwork,
    attributes: list[str] | tuple[str, ...],
) -> np.ndarray:
    """Impute a complete ``(n, len(attributes))`` matrix.

    Parameters
    ----------
    network:
        The network supplying both observations and neighbourhoods.
    attributes:
        Names of numeric attributes, one output column each.
    """
    if not attributes:
        raise AttributeSpecError("attributes must be non-empty")
    n = network.num_nodes
    matrices = build_relation_matrices(network)
    flattened = matrices.combined()  # all link types, weight 1

    result = np.empty((n, len(attributes)))
    for column, name in enumerate(attributes):
        attribute = network.numeric_attribute(name)
        sums = np.zeros(n)
        counts = np.zeros(n)
        for node in attribute.nodes_with_observations():
            index = network.index_of(node)
            values = attribute.values_of(node)
            sums[index] = float(np.sum(values))
            counts[index] = float(len(values))
        # pool each node's own observations with its out-neighbours'
        pooled_sums = sums + flattened @ sums
        pooled_counts = counts + flattened @ counts
        total = sums.sum()
        count_total = counts.sum()
        global_mean = total / count_total if count_total > 0 else 0.0
        with np.errstate(invalid="ignore", divide="ignore"):
            column_values = np.where(
                pooled_counts > 0,
                pooled_sums / np.maximum(pooled_counts, 1e-300),
                global_mean,
            )
        result[:, column] = column_values
    return result


def standardize(matrix: np.ndarray) -> np.ndarray:
    """Center columns and scale to unit variance (Section 5.2.1 prep).

    Constant columns become all-zero rather than NaN.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    mean = matrix.mean(axis=0, keepdims=True)
    std = matrix.std(axis=0, keepdims=True)
    safe_std = np.where(std > 0, std, 1.0)
    return (matrix - mean) / safe_std
