"""NetPLSA baseline (Mei, Cai, Zhang, Zhai, WWW 2008 [18]).

Topic modeling with network regularization: the PLSA log-likelihood is
traded off against a graph-harmonic penalty

    (1 - lambda) * L_PLSA(theta, beta)
    - lambda * 1/2 * sum_{<u,v>} w_uv sum_k (theta_uk - theta_vk)^2 .

Following the original paper's optimization, each M-step first computes
the PLSA update of ``theta`` and then applies random-walk smoothing
steps ``theta <- (1 - xi) theta_plsa + xi D^-1 W theta`` that push linked
nodes together.

Heterogeneous networks are seen through a *homogenized* symmetric
adjacency (every relation flattened at weight 1, as Section 5.2.1 of the
GenClus paper prescribes for this baseline).  Objects without text
participate only through smoothing -- their theta starts random and only
the propagation term moves it, which is exactly the weakness the GenClus
comparison exposes on the ACP network.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro.baselines.plsa import _em_iteration
from repro.exceptions import ConfigError
from repro.hin.network import HeterogeneousNetwork
from repro.hin.views import build_relation_matrices


class NetPLSA:
    """NetPLSA on a homogenized heterogeneous network.

    Parameters
    ----------
    n_topics:
        Number of topics ``K``.
    lambda_:
        Trade-off between text likelihood and graph smoothness in
        ``[0, 1)``; the original paper uses 0.5.
    smoothing_steps:
        Random-walk smoothing applications per M-step.
    max_iterations:
        Outer EM iteration cap.
    seed:
        RNG seed.
    """

    def __init__(
        self,
        n_topics: int,
        lambda_: float = 0.5,
        smoothing_steps: int = 3,
        max_iterations: int = 100,
        seed: int | None = None,
    ) -> None:
        if n_topics < 1:
            raise ConfigError(f"n_topics must be >= 1, got {n_topics}")
        if not 0.0 <= lambda_ < 1.0:
            raise ConfigError(f"lambda_ must be in [0, 1), got {lambda_}")
        if smoothing_steps < 0:
            raise ConfigError(
                f"smoothing_steps must be >= 0, got {smoothing_steps}"
            )
        self.n_topics = n_topics
        self.lambda_ = lambda_
        self.smoothing_steps = smoothing_steps
        self.max_iterations = max_iterations
        self.seed = seed

    def fit_network(
        self, network: HeterogeneousNetwork, attribute: str
    ) -> np.ndarray:
        """Cluster a network by one text attribute; returns ``(n, K)``.

        Every node gets a topic-proportion row, including nodes with no
        text (driven by smoothing only).
        """
        text = network.text_attribute(attribute)
        compiled = text.compile(network.node_index)
        n = network.num_nodes
        vocab = compiled.vocab_size
        if vocab == 0:
            raise ConfigError(
                f"attribute {attribute!r} has an empty vocabulary"
            )
        # full-network count matrix (zero rows for text-free nodes)
        expanded = sparse.lil_matrix((n, vocab))
        expanded[compiled.node_indices] = compiled.counts
        counts = expanded.tocsr()
        coo = counts.tocoo()

        walk = _random_walk_matrix(network)
        rng = np.random.default_rng(self.seed)
        theta = rng.dirichlet(np.ones(self.n_topics), size=n)
        beta = rng.dirichlet(np.ones(vocab), size=self.n_topics)
        has_text = np.zeros(n, dtype=bool)
        has_text[compiled.node_indices] = True

        for _ in range(self.max_iterations):
            theta_plsa, beta, _ = _em_iteration(
                theta, beta, counts, coo.row, coo.col, coo.data, 1e-10
            )
            # nodes without text have no PLSA evidence: keep current theta
            theta_plsa[~has_text] = theta[~has_text]
            smoothed = theta_plsa
            for _ in range(self.smoothing_steps):
                smoothed = (
                    (1.0 - self.lambda_) * theta_plsa
                    + self.lambda_ * (walk @ smoothed)
                )
            row_sums = smoothed.sum(axis=1, keepdims=True)
            theta = smoothed / np.maximum(row_sums, 1e-300)
        return theta


def _random_walk_matrix(
    network: HeterogeneousNetwork,
) -> sparse.csr_matrix:
    """Symmetric homogenized adjacency, row-normalized (``D^-1 W``).

    Isolated rows become self-loops so the walk is well defined.
    """
    matrices = build_relation_matrices(network)
    combined = matrices.combined()
    symmetric = (combined + combined.T).tocsr()
    degrees = np.asarray(symmetric.sum(axis=1)).ravel()
    n = network.num_nodes
    isolated = degrees <= 0
    if isolated.any():
        fix = sparse.csr_matrix(
            (
                np.ones(int(isolated.sum())),
                (np.nonzero(isolated)[0], np.nonzero(isolated)[0]),
            ),
            shape=(n, n),
        )
        symmetric = (symmetric + fix).tocsr()
        degrees = np.asarray(symmetric.sum(axis=1)).ravel()
    inverse_degree = sparse.diags(1.0 / degrees)
    return (inverse_degree @ symmetric).tocsr()
