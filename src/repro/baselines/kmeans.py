"""k-means with k-means++ seeding.

The attribute-only weather baseline (Section 5.2.1): it sees each sensor
as one point in the interpolated (temperature, precipitation) plane and
ignores the network entirely.  Implemented from scratch on numpy (Lloyd
iterations, k-means++ initialization, multi-restart).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigError


@dataclass(frozen=True, slots=True)
class KMeansResult:
    """One k-means fit: labels, centers and the final inertia."""

    labels: np.ndarray
    centers: np.ndarray
    inertia: float
    iterations: int


def kmeans(
    data: np.ndarray,
    n_clusters: int,
    seed: int | None = None,
    n_init: int = 5,
    max_iterations: int = 300,
    tol: float = 1e-8,
) -> KMeansResult:
    """Cluster rows of ``data`` into ``n_clusters`` groups.

    Parameters
    ----------
    data:
        ``(n, d)`` point matrix.
    n_clusters:
        Number of clusters.
    seed:
        RNG seed shared by all restarts.
    n_init:
        Independent k-means++ restarts; the lowest-inertia run wins.
    max_iterations, tol:
        Lloyd-iteration budget and center-movement stopping threshold.
    """
    data = np.asarray(data, dtype=np.float64)
    if data.ndim != 2:
        raise ConfigError(f"data must be 2-D, got shape {data.shape}")
    n = data.shape[0]
    if n_clusters < 1 or n_clusters > n:
        raise ConfigError(
            f"n_clusters must be in 1..{n}, got {n_clusters}"
        )
    if n_init < 1:
        raise ConfigError(f"n_init must be >= 1, got {n_init}")
    rng = np.random.default_rng(seed)
    best: KMeansResult | None = None
    for _ in range(n_init):
        result = _single_run(data, n_clusters, rng, max_iterations, tol)
        if best is None or result.inertia < best.inertia:
            best = result
    assert best is not None
    return best


def _single_run(
    data: np.ndarray,
    n_clusters: int,
    rng: np.random.Generator,
    max_iterations: int,
    tol: float,
) -> KMeansResult:
    centers = _kmeans_plus_plus(data, n_clusters, rng)
    labels = np.zeros(data.shape[0], dtype=np.int64)
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        distances = _squared_distances(data, centers)
        labels = np.argmin(distances, axis=1)
        new_centers = centers.copy()
        for k in range(n_clusters):
            members = data[labels == k]
            if members.shape[0] > 0:
                new_centers[k] = members.mean(axis=0)
            else:
                # re-seed an empty cluster at the farthest point
                farthest = np.argmax(distances.min(axis=1))
                new_centers[k] = data[farthest]
        movement = float(np.max(np.abs(new_centers - centers)))
        centers = new_centers
        if movement < tol:
            break
    distances = _squared_distances(data, centers)
    labels = np.argmin(distances, axis=1)
    inertia = float(distances[np.arange(data.shape[0]), labels].sum())
    return KMeansResult(
        labels=labels, centers=centers, inertia=inertia,
        iterations=iterations,
    )


def _kmeans_plus_plus(
    data: np.ndarray, n_clusters: int, rng: np.random.Generator
) -> np.ndarray:
    """k-means++ seeding (Arthur & Vassilvitskii 2007)."""
    n = data.shape[0]
    centers = np.empty((n_clusters, data.shape[1]))
    first = int(rng.integers(n))
    centers[0] = data[first]
    closest = _squared_distances(data, centers[:1]).ravel()
    for k in range(1, n_clusters):
        total = closest.sum()
        if total <= 0:
            # all points coincide with chosen centers: pick uniformly
            pick = int(rng.integers(n))
        else:
            pick = int(rng.choice(n, p=closest / total))
        centers[k] = data[pick]
        new_distance = _squared_distances(data, centers[k : k + 1]).ravel()
        closest = np.minimum(closest, new_distance)
    return centers


def _squared_distances(
    data: np.ndarray, centers: np.ndarray
) -> np.ndarray:
    """``(n, K)`` squared Euclidean distances to each center."""
    sq = (
        np.sum(data**2, axis=1)[:, None]
        + np.sum(centers**2, axis=1)[None, :]
        - 2.0 * (data @ centers.T)
    )
    return np.maximum(sq, 0.0)
