"""Shard transports: the seam between cluster routing and execution.

:class:`~repro.serving.router.ShardedEngine` owns routing, ownership,
and rebalance; *where a shard runs* is this module's job.  A transport
turns ``(base state, shard plan, engine knobs)`` into a tuple of
**shard handles** -- objects answering the engine's shard surface
(``query`` / ``score_specs`` / ``extend`` / ``add_links`` /
``evict_nodes`` / ``membership_of`` / ``similar_rows_partial`` /
``served_vector`` / ``suggest_context`` / ``extension_nodes`` /
``extension_export`` / ``extension_dependants`` / ``info`` /
``metrics_snapshot``) -- and knows how to rebuild one handle (a broken
shard) or replace them all (a promote).

Two backends:

* :class:`InprocessTransport` (the default): handles are
  :class:`~repro.serving.engine.InferenceEngine` objects over the
  partitioned states of one process -- PR 5's cluster verbatim, and
  the reference implementation every other backend is pinned against.
* :class:`ProcessTransport`: one **worker process per shard**
  (``python -m repro.serving.worker``).  Workers cold-start from the
  schema-v3 artifact bundle on disk (``mmap=True`` shares the frozen
  base read-only through the page cache -- the PR 8 zero-copy path,
  now across *processes*), and a length-prefixed, pickle-free message
  protocol over a localhost socket carries every shard call.  A
  promote writes the refit result as a fresh bundle and hot-swaps it
  under the live workers in two phases (``prepare`` builds the new
  engine while the old one keeps answering, ``commit`` is an atomic
  pointer swap); a dead worker is respawned from the current bundle
  and the router replays its durable-delta log -- bit-identical
  recovery, exactly like an in-process rebuild.

**The wire format is deliberately not pickle**: a frame is an 8-byte
big-endian payload length, a 4-byte header length, a JSON header, and
the raw C-order bytes of any numpy arrays the header declares (dtype +
shape ride in the header).  JSON round-trips Python floats exactly
(``repr`` shortest-form), node ids are restricted to JSON scalars
(tuples are tagged and re-tupled, which carries the router's sentinel
query ids), and membership rows travel as raw float64 -- so every
answer is bit-identical to the in-process reference, and a worker
never executes attacker-controlled bytecode.

Determinism contract: with the same artifact, plan, and block size,
``ProcessTransport`` answers are **bit-identical** to
``InprocessTransport`` answers at every worker count -- pinned in
``tests/test_transport.py`` at {1, 2, 3} workers for queries,
``score_many``, ``similar_many``, and post-promote g1/theta/gamma.

Fault sites: each RPC traverses ``worker.call`` (labels ``shard``,
``op``) on the router's injector, and
:meth:`ProcessShardHandle.kill` SIGKILLs the worker -- the scripted
process-death drills behind the PR 7 supervision machinery.
"""

from __future__ import annotations

import json
import os
import shutil
import socket
import struct
import subprocess
import sys
import tempfile
import threading
import time
from collections.abc import Iterable, Mapping, Sequence
from pathlib import Path
from typing import Any

import numpy as np

from repro.exceptions import ServingError
from repro.serving.cluster import ShardPlan
from repro.serving.engine import InferenceEngine, _canonical_key
from repro.serving.foldin import FoldInOutcome, NewNode

__all__ = [
    "InprocessTransport",
    "ProcessShardHandle",
    "ProcessTransport",
    "RemoteShardError",
    "TransportError",
    "resolve_transport",
]

_HEADER_STRUCT = struct.Struct("!Q")
_HLEN_STRUCT = struct.Struct("!I")
# one frame carries at most one batch of membership rows; anything
# beyond this is a protocol bug, not a workload
_MAX_FRAME = 1 << 31


class TransportError(ServingError):
    """A transport-level failure: the worker process died, the socket
    broke, or a frame failed to parse.  Retryable by supervision; the
    breaker's ``on_open`` respawns the worker."""


class RemoteShardError(ServingError):
    """An error raised *inside* a shard worker, re-raised router-side
    with the worker's message (the remote type name is prefixed when
    it was not a ServingError)."""


# ----------------------------------------------------------------------
# framing
# ----------------------------------------------------------------------
def encode_frame(
    header: Mapping[str, Any], arrays: Sequence[np.ndarray] = ()
) -> bytes:
    """One wire frame: lengths + JSON header + raw array bytes."""
    meta = dict(header)
    meta["arrays"] = [
        {"dtype": array.dtype.str, "shape": list(array.shape)}
        for array in arrays
    ]
    head = json.dumps(meta, ensure_ascii=True).encode("ascii")
    blobs = b"".join(
        np.ascontiguousarray(array).tobytes() for array in arrays
    )
    payload_len = _HLEN_STRUCT.size + len(head) + len(blobs)
    return (
        _HEADER_STRUCT.pack(payload_len)
        + _HLEN_STRUCT.pack(len(head))
        + head
        + blobs
    )


def decode_payload(
    payload: bytes,
) -> tuple[dict[str, Any], list[np.ndarray]]:
    """Parse one frame payload back into ``(header, arrays)``."""
    (head_len,) = _HLEN_STRUCT.unpack_from(payload, 0)
    offset = _HLEN_STRUCT.size
    header = json.loads(payload[offset : offset + head_len].decode("ascii"))
    offset += head_len
    arrays: list[np.ndarray] = []
    for spec in header.pop("arrays", []):
        dtype = np.dtype(spec["dtype"])
        shape = tuple(int(n) for n in spec["shape"])
        count = int(np.prod(shape)) if shape else 1
        nbytes = dtype.itemsize * count
        chunk = payload[offset : offset + nbytes]
        if len(chunk) != nbytes:
            raise TransportError(
                f"truncated array in frame: wanted {nbytes} bytes, "
                f"got {len(chunk)}"
            )
        arrays.append(
            np.frombuffer(chunk, dtype=dtype).reshape(shape).copy()
        )
        offset += nbytes
    return header, arrays


def send_message(
    sock: socket.socket,
    header: Mapping[str, Any],
    arrays: Sequence[np.ndarray] = (),
) -> None:
    try:
        sock.sendall(encode_frame(header, arrays))
    except OSError as exc:
        raise TransportError(
            f"shard connection broke while sending "
            f"{header.get('op', '?')!r}: {exc}"
        ) from None


def recv_message(
    sock: socket.socket,
) -> tuple[dict[str, Any], list[np.ndarray]]:
    length_bytes = _recv_exact(sock, _HEADER_STRUCT.size)
    (payload_len,) = _HEADER_STRUCT.unpack(length_bytes)
    if payload_len > _MAX_FRAME:
        raise TransportError(
            f"frame length {payload_len} exceeds the {_MAX_FRAME} "
            f"byte protocol limit"
        )
    return decode_payload(_recv_exact(sock, payload_len))


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    chunks: list[bytes] = []
    remaining = count
    while remaining:
        try:
            chunk = sock.recv(min(remaining, 1 << 20))
        except OSError as exc:
            raise TransportError(
                f"shard connection broke mid-frame: {exc}"
            ) from None
        if not chunk:
            raise TransportError(
                "shard connection closed mid-frame (worker process "
                "died?)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


# ----------------------------------------------------------------------
# value codecs (JSON-safe, float-exact, pickle-free)
# ----------------------------------------------------------------------
_SCALARS = (str, int, float, bool, type(None))


def encode_node(node: object) -> object:
    """Node ids on the wire: JSON scalars pass through, tuples are
    tagged (this carries the ``(_QUERY_ID, position)`` sentinels whose
    positions shard-side errors must name)."""
    if isinstance(node, bool) or node is None or isinstance(node, (str, float)):
        return node
    if isinstance(node, int):
        return node
    if isinstance(node, tuple):
        return {"__tuple__": [encode_node(item) for item in node]}
    raise TransportError(
        f"node id {node!r} ({type(node).__name__}) is not "
        f"transportable; the process transport carries JSON scalar "
        f"ids (str/int/float/bool) and tuples of them"
    )


def decode_node(wire: object) -> object:
    if isinstance(wire, Mapping) and "__tuple__" in wire:
        return tuple(decode_node(item) for item in wire["__tuple__"])
    return wire


def encode_spec(spec: NewNode) -> dict[str, Any]:
    text: dict[str, Any] = {}
    for attribute, bag in spec.text.items():
        if isinstance(bag, Mapping):
            text[attribute] = {"counts": dict(bag)}
        else:
            text[attribute] = {"tokens": list(bag)}
    return {
        "node": encode_node(spec.node),
        "object_type": spec.object_type,
        "links": [
            [relation, encode_node(target), weight]
            for relation, target, weight in spec.links
        ],
        "text": text,
        "numeric": {
            attribute: list(values)
            for attribute, values in spec.numeric.items()
        },
    }


def decode_spec(wire: Mapping[str, Any]) -> NewNode:
    text: dict[str, Any] = {}
    for attribute, bag in wire.get("text", {}).items():
        if "counts" in bag:
            text[attribute] = dict(bag["counts"])
        else:
            text[attribute] = list(bag["tokens"])
    return NewNode(
        node=decode_node(wire["node"]),
        object_type=wire["object_type"],
        links=tuple(
            (relation, decode_node(target), weight)
            for relation, target, weight in wire.get("links", ())
        ),
        text=text,
        numeric={
            attribute: list(values)
            for attribute, values in wire.get("numeric", {}).items()
        },
    )


def encode_link(link: tuple) -> list:
    entry = [encode_node(link[0]), link[1], encode_node(link[2])]
    if len(link) == 4:
        entry.append(float(link[3]))
    return entry


def decode_link(wire: Sequence) -> tuple:
    if len(wire) == 4:
        return (
            decode_node(wire[0]),
            wire[1],
            decode_node(wire[2]),
            float(wire[3]),
        )
    return (decode_node(wire[0]), wire[1], decode_node(wire[2]))


def plan_to_wire(plan: ShardPlan) -> dict[str, Any]:
    return {
        "n_shards": plan.n_shards,
        "num_rows": plan.num_rows,
        "block_rows": plan.block_rows,
        "block_bounds": [list(pair) for pair in plan.block_bounds],
        "row_bounds": [list(pair) for pair in plan.row_bounds],
    }


def plan_from_wire(wire: Mapping[str, Any]) -> ShardPlan:
    return ShardPlan(
        n_shards=int(wire["n_shards"]),
        num_rows=int(wire["num_rows"]),
        block_rows=int(wire["block_rows"]),
        block_bounds=tuple(
            (int(first), int(stop))
            for first, stop in wire["block_bounds"]
        ),
        row_bounds=tuple(
            (int(start), int(stop))
            for start, stop in wire["row_bounds"]
        ),
    )


def outcome_from_wire(
    header: Mapping[str, Any], theta: np.ndarray
) -> FoldInOutcome:
    return FoldInOutcome(
        nodes=tuple(decode_node(node) for node in header["nodes"]),
        theta=theta,
        iterations=int(header["iterations"]),
        converged=bool(header["converged"]),
        oov_terms=int(header["oov_terms"]),
    )


# ----------------------------------------------------------------------
# the in-process reference backend
# ----------------------------------------------------------------------
class InprocessTransport:
    """Shard handles are engines over partitioned states -- PR 5's
    thread-scattered cluster, unchanged.  The reference backend every
    other transport is pinned bit-identical against."""

    name = "inproc"

    def start(
        self,
        state,
        plan: ShardPlan,
        engine_kwargs: Mapping[str, Any],
        faults=None,
    ) -> tuple[InferenceEngine, ...]:
        states = state.partition(plan)
        return tuple(
            InferenceEngine.from_state(
                shard_state,
                shard_id=shard_id,
                shard_count=plan.n_shards,
                **engine_kwargs,
            )
            for shard_id, shard_state in enumerate(states)
        )

    def rebuild(
        self,
        shard: int,
        state,
        plan: ShardPlan,
        engine_kwargs: Mapping[str, Any],
        faults=None,
    ) -> InferenceEngine:
        fresh_state = state.partition_shard(plan, shard)
        return InferenceEngine.from_state(
            fresh_state,
            shard_id=shard,
            shard_count=plan.n_shards,
            **engine_kwargs,
        )

    def replace(
        self,
        state,
        result,
        plan: ShardPlan,
        engine_kwargs: Mapping[str, Any],
        faults=None,
    ) -> tuple[InferenceEngine, ...]:
        return self.start(state, plan, engine_kwargs, faults)

    def shutdown(self) -> None:
        pass

    def describe(self) -> dict[str, Any]:
        return {"backend": self.name}


# ----------------------------------------------------------------------
# the multiprocess backend
# ----------------------------------------------------------------------
class ProcessShardHandle:
    """One worker process's client half: the shard surface over RPC.

    Calls are serialized per handle (one socket, one lock) -- the
    router's scatter already gives cross-shard concurrency, and a
    worker executes requests in arrival order anyway.  Every call
    traverses the ``worker.call`` fault site first, so chaos plans can
    script transport failures per shard and per op.
    """

    def __init__(
        self,
        shard: int,
        process: subprocess.Popen,
        sock: socket.socket,
        faults=None,
    ) -> None:
        self.shard = shard
        self._process = process
        self._sock = sock
        self._faults = faults
        self._lock = threading.Lock()
        self._closed = False

    # -- plumbing ------------------------------------------------------
    @property
    def pid(self) -> int:
        return self._process.pid

    def is_alive(self) -> bool:
        return not self._closed and self._process.poll() is None

    def _call(
        self,
        op: str,
        meta: Mapping[str, Any] | None = None,
        arrays: Sequence[np.ndarray] = (),
    ) -> tuple[dict[str, Any], list[np.ndarray]]:
        if self._faults is not None:
            self._faults.traverse(
                "worker.call", shard=self.shard, op=op
            )
        header = {"op": op}
        if meta:
            header.update(meta)
        with self._lock:
            if self._closed:
                raise TransportError(
                    f"shard {self.shard} worker connection is closed"
                )
            try:
                send_message(self._sock, header, arrays)
                reply, reply_arrays = recv_message(self._sock)
            except TransportError as exc:
                raise TransportError(
                    f"shard {self.shard} worker (pid {self.pid}) "
                    f"failed during {op!r}: {exc}"
                ) from None
        if reply.get("error") is not None:
            error = reply["error"]
            message = error.get("message", "remote failure")
            if error.get("serving"):
                raise RemoteShardError(message)
            raise RemoteShardError(
                f"{error.get('type', 'Exception')}: {message}"
            )
        return reply, reply_arrays

    def kill(self) -> None:
        """SIGKILL the worker (the scripted process-death drill)."""
        self._process.kill()
        self._process.wait()

    def close(self, timeout: float = 5.0) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._sock.sendall(encode_frame({"op": "shutdown"}))
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass
        try:
            self._process.wait(timeout=timeout)
        except subprocess.TimeoutExpired:
            self._process.kill()
            self._process.wait()

    # -- shard surface -------------------------------------------------
    def query(
        self,
        object_type: str,
        links: Sequence[tuple] = (),
        text: Mapping[str, Any] | None = None,
        numeric: Mapping[str, Sequence[float]] | None = None,
    ) -> np.ndarray:
        spec = NewNode(
            node="__wire__",
            object_type=object_type,
            links=tuple(links),
            text=dict(text or {}),
            numeric=dict(numeric or {}),
        )
        wire = encode_spec(spec)
        del wire["node"]
        _, arrays = self._call("query", wire)
        return arrays[0]

    def score_specs(
        self, specs: Sequence[NewNode], keys: Sequence[tuple]
    ) -> list[np.ndarray]:
        # keys are recomputed worker-side from the reconstructed specs
        # (the canonical form is a pure function of the spec, so cache
        # behaviour matches the in-process engine exactly)
        header, arrays = self._call(
            "score_specs",
            {"specs": [encode_spec(spec) for spec in specs]},
        )
        if not specs:
            return []
        return [row for row in arrays[0]]

    def extend(self, nodes: Sequence[NewNode]) -> FoldInOutcome:
        header, arrays = self._call(
            "extend",
            {"specs": [encode_spec(spec) for spec in nodes]},
        )
        return outcome_from_wire(header, arrays[0])

    def add_links(self, links: Iterable[tuple]) -> FoldInOutcome:
        header, arrays = self._call(
            "add_links",
            {"links": [encode_link(link) for link in links]},
        )
        return outcome_from_wire(header, arrays[0])

    def evict_nodes(
        self, nodes: Iterable[object]
    ) -> tuple[object, ...]:
        header, _ = self._call(
            "evict_nodes",
            {"nodes": [encode_node(node) for node in nodes]},
        )
        return tuple(decode_node(node) for node in header["evicted"])

    def membership_of(self, node: object) -> np.ndarray:
        _, arrays = self._call(
            "membership_of", {"node": encode_node(node)}
        )
        return arrays[0]

    def similar_rows_partial(
        self,
        queries: np.ndarray,
        k: int,
        metric: str,
        candidate_types: Sequence[str | None] | None = None,
        exclude_nodes: Sequence[Iterable[object] | None] | None = None,
        base_range: tuple[int, int] | None = None,
    ) -> list[tuple[np.ndarray, np.ndarray]]:
        if not isinstance(queries, np.ndarray) or queries.ndim != 2:
            raise TransportError(
                "the process transport scatters similarity queries as "
                "an (m, K) vector matrix (the router's form)"
            )
        meta: dict[str, Any] = {"k": int(k), "metric": metric}
        if candidate_types is not None:
            meta["candidate_types"] = list(candidate_types)
        if exclude_nodes is not None:
            meta["exclude_nodes"] = [
                None
                if excluded is None
                else [encode_node(node) for node in excluded]
                for excluded in exclude_nodes
            ]
        if base_range is not None:
            meta["base_range"] = [int(base_range[0]), int(base_range[1])]
        _, arrays = self._call(
            "similar_rows_partial",
            meta,
            [np.ascontiguousarray(queries, dtype=np.float64)],
        )
        return [
            (arrays[2 * position], arrays[2 * position + 1])
            for position in range(len(arrays) // 2)
        ]

    def served_vector(self, node: object) -> tuple[np.ndarray, str]:
        header, arrays = self._call(
            "served_vector", {"node": encode_node(node)}
        )
        return arrays[0], header["node_type"]

    def suggest_context(
        self, node: object, relation: str
    ) -> tuple[np.ndarray, str, frozenset | None]:
        header, arrays = self._call(
            "suggest_context",
            {"node": encode_node(node), "relation": relation},
        )
        linked = header["linked"]
        if linked is not None:
            linked = frozenset(
                decode_node(target) for target in linked
            )
        return arrays[0], header["target_type"], linked

    def extension_nodes(self) -> tuple[object, ...]:
        header, _ = self._call("extension_nodes")
        return tuple(decode_node(node) for node in header["nodes"])

    def extension_export(
        self,
    ) -> tuple[tuple[object, ...], tuple[NewNode, ...], np.ndarray]:
        header, arrays = self._call("extension_export")
        nodes = tuple(decode_node(node) for node in header["nodes"])
        specs = tuple(decode_spec(spec) for spec in header["specs"])
        return nodes, specs, arrays[0]

    def extension_dependants(self, node: object) -> frozenset:
        header, _ = self._call(
            "extension_dependants", {"node": encode_node(node)}
        )
        return frozenset(
            decode_node(source) for source in header["dependants"]
        )

    def info(self) -> dict[str, Any]:
        header, _ = self._call("info")
        return header["info"]

    def metrics_snapshot(self) -> dict[str, Any]:
        header, _ = self._call("metrics_snapshot")
        return header["snapshot"]

    # -- lifecycle RPCs the transport itself drives --------------------
    def prepare(
        self,
        bundle: str,
        plan: ShardPlan,
        engine_kwargs: Mapping[str, Any],
        mmap: bool,
    ) -> None:
        self._call(
            "prepare",
            {
                "bundle": bundle,
                "plan": plan_to_wire(plan),
                "engine": dict(engine_kwargs),
                "mmap": mmap,
            },
        )

    def commit(self) -> None:
        self._call("commit")

    def ping(self) -> dict[str, Any]:
        header, _ = self._call("ping")
        return header


class ProcessTransport:
    """One worker process per shard, fed from an artifact bundle.

    Parameters
    ----------
    artifact_path:
        The saved model bundle every worker cold-starts from.  With a
        schema-v3 bundle directory and ``mmap=True`` the frozen base
        is paged lazily and shared read-only across all workers
        through the OS page cache -- per-worker cold start is
        O(pages-touched), not O(model).
    mmap:
        Map the bundle instead of loading it eagerly (workers only).
    python:
        Interpreter for workers (default: ``sys.executable``).
    startup_timeout:
        Seconds to wait for each worker to connect and finish loading.
    run_dir:
        Where promote bundles land (default: a private temp dir,
        removed on shutdown).
    """

    name = "process"

    def __init__(
        self,
        artifact_path: str | Path,
        mmap: bool = True,
        python: str | None = None,
        startup_timeout: float = 120.0,
        run_dir: str | Path | None = None,
    ) -> None:
        self._bundle = str(artifact_path)
        self._mmap = bool(mmap)
        self._python = python or sys.executable
        self._startup_timeout = float(startup_timeout)
        self._run_dir = Path(run_dir) if run_dir is not None else None
        self._owns_run_dir = run_dir is None
        self._listener: socket.socket | None = None
        self._handles: dict[int, ProcessShardHandle] = {}
        self._promotes = 0

    # ------------------------------------------------------------------
    def start(
        self,
        state,
        plan: ShardPlan,
        engine_kwargs: Mapping[str, Any],
        faults=None,
    ) -> tuple[ProcessShardHandle, ...]:
        self._ensure_listener()
        handles = []
        try:
            for shard in range(plan.n_shards):
                handles.append(
                    self._spawn(shard, plan, engine_kwargs, faults)
                )
        except Exception:
            for handle in handles:
                handle.close(timeout=1.0)
            raise
        self._handles = {
            handle.shard: handle for handle in handles
        }
        return tuple(handles)

    def rebuild(
        self,
        shard: int,
        state,
        plan: ShardPlan,
        engine_kwargs: Mapping[str, Any],
        faults=None,
    ) -> ProcessShardHandle:
        """Respawn one worker from the current bundle (a fresh, empty
        extension space; the router replays the durable deltas)."""
        old = self._handles.get(shard)
        if old is not None:
            try:
                old._process.kill()
            except OSError:  # pragma: no cover - already gone
                pass
            old.close(timeout=1.0)
        handle = self._spawn(shard, plan, engine_kwargs, faults)
        self._handles[shard] = handle
        return handle

    def replace(
        self,
        state,
        result,
        plan: ShardPlan,
        engine_kwargs: Mapping[str, Any],
        faults=None,
    ) -> tuple[ProcessShardHandle, ...]:
        """Hot shard replacement on promote.

        The refit result is frozen into a fresh schema-v3 bundle, then
        swapped under the live workers in two phases: every worker
        ``prepare``s (loads the new bundle and builds the new engine
        while its old engine keeps answering anything already queued),
        then every worker ``commit``s (an atomic pointer swap).  A
        worker that fails to prepare is respawned straight onto the
        new bundle instead.
        """
        from repro.serving.artifact import ModelArtifact

        self._promotes += 1
        bundle = (
            self._ensure_run_dir() / f"promote-{self._promotes:04d}"
        )
        ModelArtifact.from_result(result).save(bundle)
        self._bundle = str(bundle)
        handles: list[ProcessShardHandle] = []
        for shard in range(plan.n_shards):
            handle = self._handles.get(shard)
            prepared = False
            if handle is not None and handle.is_alive():
                try:
                    handle.prepare(
                        self._bundle, plan, engine_kwargs, self._mmap
                    )
                    prepared = True
                except ServingError:
                    pass
            if not prepared:
                handle = self.rebuild(
                    shard, state, plan, engine_kwargs, faults
                )
            else:
                handle.commit()
            handles.append(handle)
        self._handles = {
            handle.shard: handle for handle in handles
        }
        return tuple(handles)

    def shutdown(self) -> None:
        for handle in self._handles.values():
            handle.close()
        self._handles = {}
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:  # pragma: no cover - defensive
                pass
            self._listener = None
        if (
            self._owns_run_dir
            and self._run_dir is not None
            and self._run_dir.exists()
        ):
            shutil.rmtree(self._run_dir, ignore_errors=True)
            self._run_dir = None

    def describe(self) -> dict[str, Any]:
        return {
            "backend": self.name,
            "bundle": self._bundle,
            "mmap": self._mmap,
            "workers": {
                str(shard): {
                    "pid": handle.pid,
                    "alive": handle.is_alive(),
                }
                for shard, handle in sorted(self._handles.items())
            },
        }

    def __del__(self):  # pragma: no cover - GC safety net
        try:
            self.shutdown()
        except Exception:
            pass

    # ------------------------------------------------------------------
    def _ensure_listener(self) -> socket.socket:
        if self._listener is None:
            listener = socket.create_server(
                ("127.0.0.1", 0), backlog=16
            )
            listener.settimeout(self._startup_timeout)
            self._listener = listener
        return self._listener

    def _ensure_run_dir(self) -> Path:
        if self._run_dir is None:
            self._run_dir = Path(
                tempfile.mkdtemp(prefix="repro-serving-run-")
            )
        else:
            self._run_dir.mkdir(parents=True, exist_ok=True)
        return self._run_dir

    def _spawn(
        self,
        shard: int,
        plan: ShardPlan,
        engine_kwargs: Mapping[str, Any],
        faults=None,
    ) -> ProcessShardHandle:
        listener = self._ensure_listener()
        host, port = listener.getsockname()
        env = os.environ.copy()
        src_root = str(Path(__file__).resolve().parents[2])
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            src_root + os.pathsep + existing if existing else src_root
        )
        process = subprocess.Popen(
            [
                self._python,
                "-m",
                "repro.serving.worker",
                "--connect",
                f"{host}:{port}",
                "--shard",
                str(shard),
            ],
            env=env,
        )
        deadline = time.monotonic() + self._startup_timeout
        try:
            sock = self._accept_worker(shard, process, deadline)
            sock.setsockopt(
                socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
            )
            send_message(
                sock,
                {
                    "op": "init",
                    "bundle": self._bundle,
                    "mmap": self._mmap,
                    "shard": shard,
                    "plan": plan_to_wire(plan),
                    "engine": dict(engine_kwargs),
                },
            )
            header, _ = recv_message(sock)
        except TransportError:
            process.kill()
            process.wait()
            raise
        if header.get("error") is not None:
            message = header["error"].get("message", "init failed")
            process.kill()
            process.wait()
            raise TransportError(
                f"shard {shard} worker failed to initialize: {message}"
            )
        return ProcessShardHandle(shard, process, sock, faults)

    def _accept_worker(
        self,
        shard: int,
        process: subprocess.Popen,
        deadline: float,
    ) -> socket.socket:
        """Accept until the connection announcing ``shard`` arrives.

        Accept order is scheduler-dependent, so each worker opens with
        a ``hello`` naming its shard; a connection for another shard
        mid-respawn would be a protocol bug and is rejected loudly.
        """
        listener = self._listener
        assert listener is not None
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0 or process.poll() is not None:
                raise TransportError(
                    f"shard {shard} worker did not come up within "
                    f"{self._startup_timeout}s "
                    f"(exit code {process.poll()})"
                )
            listener.settimeout(min(remaining, 1.0))
            try:
                sock, _ = listener.accept()
            except socket.timeout:
                continue
            hello, _ = recv_message(sock)
            if hello.get("op") != "hello":
                sock.close()
                raise TransportError(
                    f"worker handshake did not open with hello: "
                    f"{hello.get('op')!r}"
                )
            if int(hello.get("shard", -1)) != shard:
                sock.close()
                raise TransportError(
                    f"worker for shard {hello.get('shard')} connected "
                    f"while spawning shard {shard}"
                )
            return sock


def resolve_transport(transport) -> InprocessTransport | ProcessTransport:
    """Accept ``None`` / ``"inproc"`` / a transport instance."""
    if transport is None or transport == "inproc":
        return InprocessTransport()
    if transport == "process":
        raise ServingError(
            "the process transport needs the artifact bundle path: "
            "construct ProcessTransport(path) and pass the instance, "
            "or use ShardedEngine.load(path, ..., "
            "transport='process')"
        )
    if hasattr(transport, "start") and hasattr(transport, "rebuild"):
        return transport
    raise ServingError(
        f"transport must be None, 'inproc', or a transport instance, "
        f"got {transport!r}"
    )
