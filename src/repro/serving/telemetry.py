"""Serving metric families and the unified ``info()`` schema.

One place declares every serving-layer metric family -- the engine,
the cluster router, and the retrain driver all call
:class:`ServingMetrics` against their registry, so family names, help
text, and bucket bounds cannot drift between layers (and a cluster
aggregation of shard registries always finds matching shapes).

:func:`info_sections` is the other half of the unification: both
:meth:`InferenceEngine.info <repro.serving.engine.InferenceEngine.info>`
and :meth:`ShardedEngine.info <repro.serving.router.ShardedEngine.info>`
derive their ``cache`` / ``queries`` / ``extension`` / ``foldin``
sections from a registry snapshot through this one function (the
router from the *aggregated* cluster snapshot), so the two schemas are
the same schema, stamped with the same ``telemetry_version``.
"""

from __future__ import annotations

from typing import Any

from repro.obs.metrics import (
    LATENCY_BUCKETS,
    SIZE_BUCKETS,
    MetricsRegistry,
    series_value,
)

# Families the cluster router is the source of truth for: shard
# registries also track some of these locally (a shard counts the
# evictions applied to it; a routed single query is counted by the
# shard that served it), so a plain sum over shard snapshots would
# double-count them.  Cluster aggregation therefore overwrites these
# families with the router's own series after summing the rest.
ROUTER_AUTHORITATIVE = frozenset(
    {
        "repro_queries_total",
        "repro_evicted_nodes_total",
        "repro_promotions_total",
        "repro_promote_rollbacks_total",
        "repro_promote_seconds",
        "repro_retrain_rounds_total",
        "repro_retrain_failures_total",
        "repro_retrain_backoffs_total",
        "repro_retrain_pressure_scale",
        "repro_retrain_last_g1_gain",
        # similarity queries are counted where they are answered: the
        # router owns the cluster-scope count and latency, shards only
        # see scatter fragments of each query
        "repro_similarity_queries_total",
        "repro_similarity_seconds",
    }
)


class ServingMetrics:
    """Live handles to the serving metric families of one registry.

    Declaring every family up front (at engine construction) means an
    export always covers the full schema -- a scrape taken before the
    first query still shows ``repro_cache_hits_total 0`` rather than a
    missing family.
    """

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry
        self.queries = registry.counter(
            "repro_queries_total", "Transient queries answered"
        )
        self.cache_hits = registry.counter(
            "repro_cache_hits_total", "Query-cache hits"
        )
        self.cache_misses = registry.counter(
            "repro_cache_misses_total", "Query-cache misses"
        )
        self.cache_entries = registry.gauge(
            "repro_cache_entries", "Memoized transient queries"
        )
        self.cache_capacity = registry.gauge(
            "repro_cache_capacity", "Query-cache capacity"
        )
        self.foldin_sweeps = registry.counter(
            "repro_foldin_sweeps_total", "Fold-in fixed-point sweeps"
        )
        self.foldin_seconds = registry.histogram(
            "repro_foldin_seconds",
            "Wall-clock seconds per fold-in call (all sweeps)",
            buckets=LATENCY_BUCKETS,
        )
        self.extends = registry.counter(
            "repro_extends_total", "Durable extend batches absorbed"
        )
        self.link_deltas = registry.counter(
            "repro_link_deltas_total", "Link deltas absorbed"
        )
        self.refolded_rows = registry.counter(
            "repro_refolded_rows_total",
            "Extension rows re-folded by link deltas",
        )
        self.extension_nodes = registry.gauge(
            "repro_extension_nodes", "Folded-in extension nodes"
        )
        self.extension_links = registry.gauge(
            "repro_extension_links", "Accumulated extension out-links"
        )
        self.extension_capacity = registry.gauge(
            "repro_extension_capacity_rows",
            "Allocated extension theta rows",
        )
        self.extension_bytes = registry.gauge(
            "repro_extension_theta_bytes",
            "Bytes held by the extension theta buffer",
        )
        self.evictions = registry.counter(
            "repro_evicted_nodes_total", "Extension nodes evicted"
        )
        self.promotions = registry.counter(
            "repro_promotions_total", "Promote refits served"
        )
        self.promote_seconds = registry.histogram(
            "repro_promote_seconds",
            "Wall-clock seconds per promote refit",
            buckets=LATENCY_BUCKETS,
        )
        self.promote_rollbacks = registry.counter(
            "repro_promote_rollbacks_total",
            "Promote refits rolled back (failed or divergent "
            "candidates; the old state kept serving)",
        )
        # the retrain driver records into its engine's registry; the
        # families are declared here so every export carries them
        self.retrain_rounds = registry.counter(
            "repro_retrain_rounds_total",
            "Driver-triggered retrain rounds completed",
        )
        self.retrain_failures = registry.counter(
            "repro_retrain_failures_total",
            "Driver-triggered retrains that raised",
        )
        self.retrain_backoffs = registry.counter(
            "repro_retrain_backoffs_total",
            "Retrain rounds that raised the trigger thresholds",
        )
        self.retrain_scale = registry.gauge(
            "repro_retrain_pressure_scale",
            "Live retrain cooldown multiplier (1 = thresholds as set)",
        )
        self.retrain_scale.set(1.0)
        self.retrain_last_gain = registry.gauge(
            "repro_retrain_last_g1_gain",
            "g1 gain realized by the last retrain round",
        )
        # blocked top-k similarity serving (PR 9)
        self.similarity_queries = registry.counter(
            "repro_similarity_queries_total",
            "Top-k similarity queries answered",
        )
        self.similarity_seconds = registry.histogram(
            "repro_similarity_seconds",
            "Wall-clock seconds per similarity batch",
            buckets=LATENCY_BUCKETS,
        )
        self.simcache_entries = registry.gauge(
            "repro_similarity_precompute_entries",
            "Cached per-metric similarity precomputes",
        )
        self.simcache_bytes = registry.gauge(
            "repro_similarity_precompute_bytes",
            "Bytes held by cached similarity precomputes",
        )
        self.simcache_hits = registry.counter(
            "repro_similarity_precompute_hits_total",
            "Similarity precompute-cache hits",
        )
        self.simcache_misses = registry.counter(
            "repro_similarity_precompute_misses_total",
            "Similarity precompute-cache misses (rebuilds)",
        )
        self.simcache_invalidations = registry.counter(
            "repro_similarity_precompute_invalidations_total",
            "Similarity precomputes dropped by state mutations",
        )


class RouterMetrics(ServingMetrics):
    """The router's families: everything a shard has, plus the
    scatter-gather instrumentation."""

    def __init__(self, registry: MetricsRegistry) -> None:
        super().__init__(registry)
        self.batches = registry.counter(
            "repro_router_batches_total",
            "score_many batches scattered",
        )
        self.batch_size = registry.histogram(
            "repro_router_batch_size",
            "Queries per score_many batch",
            buckets=SIZE_BUCKETS,
        )
        self.batch_seconds = registry.histogram(
            "repro_router_batch_seconds",
            "Wall-clock seconds per score_many batch (scatter to "
            "gather)",
            buckets=LATENCY_BUCKETS,
        )
        self.inflight = registry.gauge(
            "repro_router_inflight_subbatches",
            "Per-shard sub-batches currently in flight",
        )
        # supervision families (cluster-scope: the supervisor records
        # into the router's registry only)
        self.shard_retries = registry.counter(
            "repro_shard_retries_total",
            "Supervised shard-call retry attempts",
        )
        self.breaker_opens = registry.counter(
            "repro_breaker_opens_total",
            "Circuit-breaker trips to open",
        )
        self.shard_rebuilds = registry.counter(
            "repro_shard_rebuilds_total",
            "Shard engines rebuilt from the frozen base + replayed "
            "deltas",
        )
        self.degraded_queries = registry.counter(
            "repro_degraded_queries_total",
            "Queries answered with a ShardFailure marker in "
            "partial-mode batches",
        )

    def breaker_state(self, shard: int):
        """The per-shard breaker state gauge (labelled; 0=closed,
        1=half-open, 2=open)."""
        return self.registry.gauge(
            "repro_breaker_state",
            "Circuit-breaker state per shard (0=closed, 1=half-open, "
            "2=open)",
            shard=str(shard),
        )

    def shard_batch_seconds(self, shard: int):
        """The per-shard sub-batch latency histogram (labelled)."""
        return self.registry.histogram(
            "repro_router_shard_batch_seconds",
            "Wall-clock seconds per shard's score_many sub-batch",
            buckets=LATENCY_BUCKETS,
            shard=str(shard),
        )


class GatewayMetrics:
    """The HTTP gateway's families (its own registry, merged with the
    cluster aggregate on ``/metrics`` export).

    Distinct ``repro_gateway_*`` names keep the merge a plain
    :func:`~repro.obs.metrics.aggregate_snapshots` -- nothing here
    collides with an engine or router family."""

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry
        self.requests = registry.counter(
            "repro_gateway_requests_total", "HTTP requests accepted"
        )
        self.rejected = registry.counter(
            "repro_gateway_rejected_total",
            "Requests rejected by admission control (429: queue "
            "full; 503: draining)",
        )
        self.request_seconds = registry.histogram(
            "repro_gateway_request_seconds",
            "Wall-clock seconds per HTTP request (admission to "
            "response)",
            buckets=LATENCY_BUCKETS,
        )
        self.batch_flushes = registry.counter(
            "repro_gateway_batch_flushes_total",
            "Micro-batch flushes (all triggers)",
        )
        self.batch_size = registry.histogram(
            "repro_gateway_batch_size",
            "Items per flushed micro-batch",
            buckets=SIZE_BUCKETS,
        )
        self.batch_wait_seconds = registry.histogram(
            "repro_gateway_batch_wait_seconds",
            "Seconds the oldest item of a batch waited before its "
            "flush",
            buckets=LATENCY_BUCKETS,
        )
        self.queue_depth = registry.gauge(
            "repro_gateway_queue_depth",
            "Items pending or in flight behind admission control",
        )
        self.draining = registry.gauge(
            "repro_gateway_draining",
            "1 while the gateway drains (new work refused)",
        )

    def flush_trigger(self, trigger: str):
        """Per-trigger flush counter (``size`` / ``time`` /
        ``drain``)."""
        return self.registry.counter(
            "repro_gateway_flush_triggers_total",
            "Micro-batch flushes by trigger",
            trigger=trigger,
        )


def info_sections(snapshot: dict) -> dict[str, Any]:
    """The snapshot-derived sections of the unified ``info()`` schema.

    Works on a single engine's snapshot and on the router's aggregated
    cluster snapshot alike -- that symmetry *is* the unification.
    """

    def count(name: str) -> int:
        return int(series_value(snapshot, name))

    return {
        "telemetry_version": snapshot["telemetry_version"],
        "cache": {
            "size": count("repro_cache_entries"),
            "max_size": count("repro_cache_capacity"),
            "hits": count("repro_cache_hits_total"),
            "misses": count("repro_cache_misses_total"),
        },
        "queries": {
            # transient queries answered (cached or folded); the
            # staleness signal retrain policies watch
            "served": count("repro_queries_total"),
        },
        "extension": {
            "nodes": count("repro_extension_nodes"),
            "links": count("repro_extension_links"),
            "capacity_rows": count("repro_extension_capacity_rows"),
            "theta_bytes": count("repro_extension_theta_bytes"),
            "evicted_total": count("repro_evicted_nodes_total"),
        },
        "foldin": {
            "sweeps": count("repro_foldin_sweeps_total"),
            "extends": count("repro_extends_total"),
            "link_deltas": count("repro_link_deltas_total"),
            "refolded_rows": count("repro_refolded_rows_total"),
            "promotions": count("repro_promotions_total"),
        },
        "similarity": {
            "queries": count("repro_similarity_queries_total"),
            "precompute_entries": count(
                "repro_similarity_precompute_entries"
            ),
            "precompute_bytes": count(
                "repro_similarity_precompute_bytes"
            ),
            "hits": count("repro_similarity_precompute_hits_total"),
            "misses": count(
                "repro_similarity_precompute_misses_total"
            ),
            "invalidations": count(
                "repro_similarity_precompute_invalidations_total"
            ),
        },
    }


def cluster_aggregate(
    shard_snapshots: list[dict], router_snapshot: dict
) -> dict:
    """Merge shard registries into the cluster view.

    Sums every family across shards (fixed-bucket histograms sum
    per-bucket), then overwrites the :data:`ROUTER_AUTHORITATIVE`
    families with the router's own series -- those are tracked at
    cluster scope and would double-count if summed with the shards'
    local copies.
    """
    from repro.obs.metrics import aggregate_snapshots

    merged = aggregate_snapshots(
        list(shard_snapshots) + [router_snapshot]
    )
    router_families = router_snapshot.get("metrics", {})
    for name in ROUTER_AUTHORITATIVE:
        family = router_families.get(name)
        if family is not None:
            merged["metrics"][name] = family
    return merged
