"""Shard planning: pinning the served index space onto a cluster.

A serving cluster splits one fitted model across several
:class:`~repro.serving.engine.InferenceEngine` shards.  The unit of
that split is **not** a node but a :class:`~repro.core.kernels.BlockPlan`
block: the blocked kernels already execute the index space in
contiguous, cache-sized row blocks shared by training, objectives, and
serving, so a shard is simply a *pinned contiguous range of those
blocks* -- :class:`ShardPlan` records which blocks (and therefore which
rows) each shard owns.

Ownership is about responsibility, not visibility.  Every shard keeps
the whole frozen base readable (a transient query may link to any
fitted node; see :meth:`repro.core.state.ModelState.partition`), but
exactly one shard *owns* each base row -- it answers membership reads
for those nodes in cluster telemetry -- and exactly one shard owns each
extension node the router folds in.  Because the underlying block plan
is a pure function of the problem shape, re-deriving a plan for the
same model always yields the same ranges: the plan is stable enough to
print (``python -m repro.serving shard-plan``), ship to operators, and
re-balance deterministically after a promotion grows the base.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.core.kernels import BlockPlan
from repro.exceptions import ServingError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.state import ModelState


@dataclass(frozen=True)
class ShardPlan:
    """Contiguous block ranges assigning a row space to shards.

    Attributes
    ----------
    n_shards:
        Number of shards in the cluster.
    num_rows:
        Rows of the planned (base) index space.
    block_rows:
        Rows per block of the underlying :class:`BlockPlan`.
    block_bounds:
        Per shard, the half-open ``(first_block, stop_block)`` range of
        owned blocks, in shard order.
    row_bounds:
        Per shard, the half-open ``(start_row, stop_row)`` range those
        blocks cover.  Ranges tile ``0..num_rows`` contiguously.
    """

    n_shards: int
    num_rows: int
    block_rows: int
    block_bounds: tuple[tuple[int, int], ...]
    row_bounds: tuple[tuple[int, int], ...]

    # ------------------------------------------------------------------
    @classmethod
    def from_state(
        cls,
        state: "ModelState",
        n_shards: int,
        block_size: int | None = None,
    ) -> "ShardPlan":
        """Propose a balanced plan for a model's served index space.

        Splits the state's shared :class:`BlockPlan` (the same
        decomposition every blocked kernel runs, derived from the
        cached operator when link views exist) into ``n_shards``
        contiguous ranges balanced to within one block.  ``block_size``
        overrides the cache-sized block rows; without an override,
        a model too small for the cache default to yield one block per
        shard is automatically decomposed finer (about four blocks per
        shard), so any model with at least ``n_shards`` rows shards.
        """
        if n_shards < 1:
            raise ServingError(
                f"n_shards must be >= 1, got {n_shards}"
            )

        plan = state.block_plan(block_size)
        if block_size is None and plan.num_blocks < n_shards:
            refined = max(1, state.num_nodes // (4 * n_shards))
            plan = state.block_plan(refined)
        return cls.from_block_plan(plan, n_shards)

    @classmethod
    def from_block_plan(
        cls, plan: BlockPlan, n_shards: int
    ) -> "ShardPlan":
        """Pin an existing block plan's blocks onto ``n_shards``."""
        try:
            block_bounds = plan.partition(n_shards)
        except ValueError as exc:
            raise ServingError(str(exc)) from None
        row_bounds = tuple(
            plan.block_rows_of(first, stop)
            for first, stop in block_bounds
        )
        return cls(
            n_shards=n_shards,
            num_rows=plan.num_rows,
            block_rows=plan.block_rows,
            block_bounds=block_bounds,
            row_bounds=row_bounds,
        )

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.n_shards

    def rows_of(self, shard: int) -> tuple[int, int]:
        """The half-open row range shard ``shard`` owns."""
        return self.row_bounds[shard]

    def num_rows_of(self, shard: int) -> int:
        start, stop = self.row_bounds[shard]
        return stop - start

    def shard_of_row(self, row: int) -> int:
        """The shard owning global base row ``row``."""
        if not 0 <= row < self.num_rows:
            raise ServingError(
                f"row {row} lies outside the planned space "
                f"0..{self.num_rows - 1}"
            )
        starts = [start for start, _ in self.row_bounds]
        return bisect_right(starts, row) - 1

    def describe(
        self, state: "ModelState | None" = None
    ) -> dict[str, Any]:
        """A JSON-ready summary of the plan.

        With a ``state`` whose link views are materialized, each
        shard's entry also reports the out-link load its rows carry
        (via :meth:`~repro.hin.views.RelationMatrices.row_link_counts`,
        pure index-pointer arithmetic) -- the imbalance signal an
        operator reads before committing to a shard count.
        """
        matrices = state.matrices if state is not None else None
        shards = []
        for shard in range(self.n_shards):
            first, stop = self.block_bounds[shard]
            start, end = self.row_bounds[shard]
            entry: dict[str, Any] = {
                "shard": shard,
                "blocks": [first, stop],
                "rows": [start, end],
                "num_rows": end - start,
            }
            if matrices is not None:
                links = matrices.row_link_counts(start, end)
                entry["links"] = links
                entry["total_links"] = int(sum(links.values()))
            shards.append(entry)
        return {
            "n_shards": self.n_shards,
            "num_rows": self.num_rows,
            "block_rows": self.block_rows,
            "num_blocks": self.block_bounds[-1][1],
            "shards": shards,
        }
