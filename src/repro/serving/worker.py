"""The shard worker process: one engine behind a socket.

``python -m repro.serving.worker --connect HOST:PORT --shard N`` is
what :class:`~repro.serving.transport.ProcessTransport` spawns, one
per shard.  The worker dials back to the transport's listener, opens
with a ``hello`` naming its shard, and waits for ``init``: the
artifact bundle path, the serialized
:class:`~repro.serving.cluster.ShardPlan`, and the engine knobs.  It
loads the bundle (``mmap=True`` pages the frozen base lazily and
shares it read-only with every sibling worker through the OS page
cache), partitions out its own shard state, and builds the same
:class:`~repro.serving.engine.InferenceEngine` the in-process
transport would -- so every answer is bit-identical by construction.

After init the worker is a plain dispatch loop: one request frame in,
one reply frame out, in order (the router's scatter provides
cross-shard concurrency; a single shard's calls are serialized on
both sides).  Replies either carry the op's payload or an ``error``
header re-raised router-side as
:class:`~repro.serving.transport.RemoteShardError` -- a worker never
dies on a bad request, only on ``shutdown``, a broken socket (its
router is gone), or the test-only ``crash`` op (``os._exit``, the
scripted process-death drill).

Hot promote: ``prepare`` loads the *next* bundle and builds the new
engine off to the side while the current one keeps answering;
``commit`` swaps the pointer.  A worker that dies instead is respawned
by the transport and the router replays its durable-delta log.
"""

from __future__ import annotations

import argparse
import os
import socket
import sys

import numpy as np

from repro.exceptions import ServingError
from repro.serving.engine import InferenceEngine, _canonical_key
from repro.serving.transport import (
    decode_link,
    decode_node,
    decode_spec,
    encode_node,
    encode_spec,
    plan_from_wire,
    recv_message,
    send_message,
)


def _build_engine(
    bundle: str, mmap: bool, shard: int, plan_wire, engine_kwargs
) -> InferenceEngine:
    from repro.serving.artifact import ModelArtifact

    plan = plan_from_wire(plan_wire)
    state = ModelArtifact.load(bundle, mmap=mmap).to_state()
    shard_state = state.partition_shard(plan, shard)
    return InferenceEngine.from_state(
        shard_state,
        shard_id=shard,
        shard_count=plan.n_shards,
        **engine_kwargs,
    )


class _Worker:
    def __init__(self, shard: int) -> None:
        self.shard = shard
        self.engine: InferenceEngine | None = None
        self.pending: InferenceEngine | None = None

    # ------------------------------------------------------------------
    def dispatch(
        self, header: dict, arrays: list[np.ndarray]
    ) -> tuple[dict, list[np.ndarray]]:
        op = header["op"]
        if op == "ping":
            return {"pong": True, "shard": self.shard}, []
        if op == "crash":
            # the scripted process-death drill: die without cleanup,
            # exactly like a SIGKILL'd worker
            os._exit(17)
        if op == "init":
            self.engine = _build_engine(
                header["bundle"],
                bool(header.get("mmap", True)),
                self.shard,
                header["plan"],
                header.get("engine", {}),
            )
            return {"ready": True}, []
        if op == "prepare":
            self.pending = _build_engine(
                header["bundle"],
                bool(header.get("mmap", True)),
                self.shard,
                header["plan"],
                header.get("engine", {}),
            )
            return {"prepared": True}, []
        if op == "commit":
            if self.pending is None:
                raise ServingError(
                    "commit without a prepared engine"
                )
            self.engine = self.pending
            self.pending = None
            return {"committed": True}, []
        engine = self.engine
        if engine is None:
            raise ServingError(
                f"shard {self.shard} worker received {op!r} before "
                f"init"
            )
        handler = getattr(self, f"_op_{op}", None)
        if handler is None:
            raise ServingError(f"unknown worker op {op!r}")
        return handler(engine, header, arrays)

    # -- scoring -------------------------------------------------------
    def _op_query(self, engine, header, arrays):
        text = {}
        for attribute, bag in header.get("text", {}).items():
            text[attribute] = (
                dict(bag["counts"]) if "counts" in bag
                else list(bag["tokens"])
            )
        membership = engine.query(
            header["object_type"],
            links=tuple(
                (relation, decode_node(target), weight)
                for relation, target, weight in header.get("links", ())
            ),
            text=text,
            numeric=header.get("numeric", {}),
        )
        return {}, [membership]

    def _op_score_specs(self, engine, header, arrays):
        specs = [decode_spec(wire) for wire in header["specs"]]
        # the canonical cache key is a pure function of the spec, so
        # recomputing here reproduces the router's keys exactly
        keys = [_canonical_key(spec) for spec in specs]
        rows = engine.score_specs(specs, keys)
        if not rows:
            return {}, [
                np.empty((0, engine.n_clusters), dtype=np.float64)
            ]
        return {}, [np.stack(rows)]

    def _op_similar_rows_partial(self, engine, header, arrays):
        exclude_nodes = None
        if "exclude_nodes" in header:
            exclude_nodes = [
                None
                if excluded is None
                else {decode_node(node) for node in excluded}
                for excluded in header["exclude_nodes"]
            ]
        base_range = header.get("base_range")
        partials = engine.similar_rows_partial(
            arrays[0],
            header["k"],
            header["metric"],
            candidate_types=header.get("candidate_types"),
            exclude_nodes=exclude_nodes,
            base_range=(
                tuple(base_range) if base_range is not None else None
            ),
        )
        flat: list[np.ndarray] = []
        for scores, rows in partials:
            flat.append(scores)
            flat.append(rows)
        return {}, flat

    def _op_membership_of(self, engine, header, arrays):
        return {}, [engine.membership_of(decode_node(header["node"]))]

    # -- durable deltas ------------------------------------------------
    def _op_extend(self, engine, header, arrays):
        outcome = engine.extend(
            [decode_spec(wire) for wire in header["specs"]]
        )
        return self._outcome_reply(outcome)

    def _op_add_links(self, engine, header, arrays):
        outcome = engine.add_links(
            [decode_link(wire) for wire in header["links"]]
        )
        return self._outcome_reply(outcome)

    def _op_evict_nodes(self, engine, header, arrays):
        evicted = engine.evict_nodes(
            [decode_node(node) for node in header["nodes"]]
        )
        return {
            "evicted": [encode_node(node) for node in evicted]
        }, []

    @staticmethod
    def _outcome_reply(outcome):
        return (
            {
                "nodes": [
                    encode_node(node) for node in outcome.nodes
                ],
                "iterations": outcome.iterations,
                "converged": outcome.converged,
                "oov_terms": outcome.oov_terms,
            },
            [outcome.theta],
        )

    # -- router context reads ------------------------------------------
    def _op_served_vector(self, engine, header, arrays):
        vector, node_type = engine.served_vector(
            decode_node(header["node"])
        )
        return {"node_type": node_type}, [vector]

    def _op_suggest_context(self, engine, header, arrays):
        vector, target_type, linked = engine.suggest_context(
            decode_node(header["node"]), header["relation"]
        )
        return {
            "target_type": target_type,
            "linked": (
                None
                if linked is None
                else [encode_node(target) for target in linked]
            ),
        }, [vector]

    def _op_extension_nodes(self, engine, header, arrays):
        return {
            "nodes": [
                encode_node(node)
                for node in engine.extension_nodes()
            ]
        }, []

    def _op_extension_export(self, engine, header, arrays):
        nodes, specs, rows = engine.extension_export()
        return {
            "nodes": [encode_node(node) for node in nodes],
            "specs": [encode_spec(spec) for spec in specs],
        }, [rows]

    def _op_extension_dependants(self, engine, header, arrays):
        dependants = engine.extension_dependants(
            decode_node(header["node"])
        )
        return {
            "dependants": [
                encode_node(source) for source in dependants
            ]
        }, []

    # -- telemetry -----------------------------------------------------
    def _op_info(self, engine, header, arrays):
        return {"info": engine.info()}, []

    def _op_metrics_snapshot(self, engine, header, arrays):
        return {"snapshot": engine.metrics_snapshot()}, []


def serve(connect: str, shard: int) -> int:
    host, _, port = connect.rpartition(":")
    sock = socket.create_connection((host, int(port)))
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    send_message(sock, {"op": "hello", "shard": shard})
    worker = _Worker(shard)
    while True:
        try:
            header, arrays = recv_message(sock)
        except ServingError:
            # the router is gone; nothing left to serve
            return 0
        op = header.get("op")
        if op == "shutdown":
            return 0
        try:
            reply, reply_arrays = worker.dispatch(header, arrays)
            reply["error"] = None
        except ServingError as exc:
            reply, reply_arrays = (
                {"error": {"message": str(exc), "serving": True}},
                [],
            )
        except Exception as exc:  # noqa: BLE001 - report, don't die
            reply, reply_arrays = (
                {
                    "error": {
                        "message": str(exc),
                        "type": type(exc).__name__,
                        "serving": False,
                    }
                },
                [],
            )
        send_message(sock, reply, reply_arrays)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serving.worker",
        description="shard worker process (spawned by ProcessTransport)",
    )
    parser.add_argument(
        "--connect",
        required=True,
        help="transport listener to dial back to, HOST:PORT",
    )
    parser.add_argument(
        "--shard",
        type=int,
        required=True,
        help="this worker's shard id",
    )
    args = parser.parse_args(argv)
    return serve(args.connect, args.shard)


if __name__ == "__main__":
    sys.exit(main())
