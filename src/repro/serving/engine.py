"""The online inference engine: a loaded model that answers queries.

:class:`InferenceEngine` wraps a :class:`~repro.core.state.ModelState`
-- the same mutable, versioned container the trainer reads and writes
-- and drives it through the serving stages of the model lifecycle:

* **Durable deltas** -- :meth:`InferenceEngine.extend` folds a batch of
  new nodes in and *appends* them to the shared state's index space, so
  later queries and deltas can link to them;
  :meth:`InferenceEngine.add_links` accumulates new out-links onto
  already-folded nodes and re-folds **only the touched component**: the
  extension nodes reverse-reachable from the delta's sources through
  extension-to-extension links (every other row is provably at its
  fixed point already), so a delta costs ``O(component)`` rather than
  ``O(total extension)``.
* **Transient queries** -- :meth:`InferenceEngine.query` scores a
  hypothetical node (links + observations) without mutating any state.
  Results are memoized in an LRU cache keyed on the canonicalized
  query; any delta invalidates the cache.
* **Promotion** -- :meth:`InferenceEngine.promote` closes the loop:
  folded-in nodes and their accumulated links become first-class
  training data in a full ``GenClus`` fit *warm-started* from the
  served theta/gamma (the state's link views are patched, not rebuilt).
  The engine then serves the promoted model with an empty extension
  space.
* **Bounded extension space** -- :meth:`InferenceEngine.evict` drops
  the least-recently-used extension nodes beyond a budget, and
  :meth:`InferenceEngine.info` reports extension-space telemetry (node
  count, buffer bytes, fold-in sweep counters).

Base memberships, gamma, and attribute component parameters stay
frozen under serving; only :meth:`promote` re-learns them.
"""

from __future__ import annotations

import re
import time
from collections import OrderedDict, deque
from collections.abc import Iterable, Mapping, Sequence
from pathlib import Path
from typing import Any

import numpy as np

from repro.core import topk
from repro.core.config import GenClusConfig
from repro.core.genclus import GenClus
from repro.core.kernels import resolve_workers
from repro.core.result import GenClusResult
from repro.core.state import ModelState
from repro.exceptions import ServingError
from repro.faults import resolve_faults
from repro.obs.observability import Observability
from repro.serving.artifact import SCHEMA_VERSION, ModelArtifact
from repro.serving.foldin import (
    FoldInOutcome,
    NewNode,
    fold_in,
)
from repro.serving.telemetry import ServingMetrics, info_sections

_QUERY_ID = "__repro.serving.query__"


def select_lru_victims(
    candidates: Iterable[object],
    excess: int,
    order_key,
    dependants_of,
    row_of,
) -> set[object]:
    """Pick up to ``excess`` eviction victims, oldest first, honouring
    link-dependency pinning.

    The worklist selection shared by :meth:`InferenceEngine.evict`
    (per-engine ages) and the cluster router (cluster-wide ages over
    all shards' extensions): each node is examined once per resolved
    blocker -- ``O(nodes + dependency links)`` total, no quadratic
    multi-pass -- and nodes pinned by a never-chosen survivor stay
    parked and survive.  ``order_key`` fixes the fully deterministic
    scan order (query age, then served row), ``dependants_of`` yields
    the extension nodes holding an out-link to a candidate, and
    ``row_of`` breaks blocker ties.
    """
    queue = deque(sorted(candidates, key=order_key))
    blocked_on: dict[object, list[object]] = {}
    chosen: set[object] = set()
    while queue and len(chosen) < excess:
        node = queue.popleft()
        # a node pins itself only through *other* survivors: a
        # self-link dies with the node, so it never blocks
        pins = dependants_of(node) - chosen - {node}
        if pins:
            blocker = min(pins, key=row_of)
            blocked_on.setdefault(blocker, []).append(node)
            continue
        chosen.add(node)
        for waiter in blocked_on.pop(node, ()):
            queue.append(waiter)
    return chosen


def promote_state(
    state: ModelState,
    config: GenClusConfig | None = None,
    num_workers: int = 1,
    block_size: int | None = None,
    obs=None,
    faults=None,
):
    """Warm-started refit of a lifecycle state's base + extensions.

    The promotion core shared by :meth:`InferenceEngine.promote` and
    the cluster-wide promote of
    :class:`~repro.serving.router.ShardedEngine`: materialize the
    state into a solver-ready problem (link views patched from the
    base operator, not rebuilt) and run Algorithm 1 warm-started from
    the served theta/gamma/attribute parameters.  Returns
    ``(result, promoted_state)`` where the promoted state is a fresh
    refit-capable base with an empty extension space, reusing the
    materialized problem's network and patched link views.

    Promotion is **transactional**: the candidate is built entirely off
    to the side and validated -- every learned parameter finite, the
    warm-started ``g1`` no worse than its floor (the paper's Newton
    step on Eq. 15 can walk gamma non-finite on pathological inputs)
    -- before anything is returned.  A failed or divergent refit
    raises and leaves ``state`` untouched, so the caller's old model
    keeps serving verbatim.  ``faults`` is an optional
    :class:`~repro.faults.FaultInjector` traversing the
    ``promote.refit`` site (payload: the candidate theta).

    Raises :class:`~repro.exceptions.ServingError` when the state is
    serve-only, the config disagrees on ``K``, or the candidate fails
    validation.
    """
    if not state.refit_capable:
        raise ServingError(
            "cannot promote: the served model is serve-only (no "
            "embedded training data; re-export it as a schema-v2 "
            "artifact from the original fit)"
        )
    if config is None:
        config = GenClusConfig(
            n_clusters=state.n_clusters,
            num_workers=num_workers,
            block_size=block_size,
        )
    elif config.n_clusters != state.n_clusters:
        raise ServingError(
            f"promote config has n_clusters={config.n_clusters}, "
            f"but the served model has K={state.n_clusters}"
        )
    problem = state.to_problem()
    result = GenClus(config).fit_problem(
        problem, warm_start=state, obs=obs
    )
    theta = result.theta
    if faults is not None:
        theta = faults.traverse("promote.refit", payload=theta)
    _validate_candidate(theta, result)
    promoted = ModelState(
        network=problem.network,
        matrices=problem.matrices,
        theta=theta,
        gamma=result.gamma,
        relation_names=problem.matrices.relation_names,
        attribute_names=problem.attribute_names,
        attribute_params=result.attribute_params,
        refit_capable=True,
    )
    return result, promoted


def _validate_candidate(theta: np.ndarray, result) -> None:
    """Reject a divergent promote candidate before it can serve.

    Checks every learned parameter for finiteness and the warm-started
    ``g1`` trajectory against its floor (the first outer iteration's
    value, i.e. where the served model already stood).  Raising here is
    what makes promotion transactional: the caller never swaps in a
    candidate that failed validation.
    """
    if not np.isfinite(theta).all():
        raise ServingError(
            "promote candidate rejected: non-finite theta (divergent "
            "refit); the previous state keeps serving"
        )
    if not np.isfinite(result.gamma).all():
        raise ServingError(
            "promote candidate rejected: non-finite gamma (the Newton "
            "strength step diverged); the previous state keeps serving"
        )
    for name, params in result.attribute_params.items():
        for key in ("beta", "means", "variances"):
            values = params.get(key)
            if values is not None and not np.isfinite(values).all():
                raise ServingError(
                    f"promote candidate rejected: non-finite "
                    f"{key!r} for attribute {name!r}; the previous "
                    f"state keeps serving"
                )
    g1 = result.history.g1_series()
    if len(g1):
        g1_first, g1_final = float(g1[0]), float(g1[-1])
        floor = g1_first - 1e-9 * max(1.0, abs(g1_first))
        if not np.isfinite(g1_final) or g1_final < floor:
            raise ServingError(
                f"promote candidate rejected: g1 regressed from "
                f"{g1_first!r} to {g1_final!r} (below the warm-start "
                f"floor); the previous state keeps serving"
            )


class InferenceEngine:
    """Serves cluster-membership queries from a fitted model.

    Parameters
    ----------
    artifact:
        The fitted model to serve.  Schema-v2 artifacts (and any
        in-memory fit) are refit-capable: :meth:`promote` works.
        Schema-v1 artifacts serve and absorb deltas but cannot refit.
    cache_size:
        Maximum memoized transient queries (0 disables the cache).
    max_iterations, tol:
        Fold-in fixed-point controls, applied to every scoring path.
    num_workers:
        Width of the blocked-kernel pool used by every fold-in sweep
        and (by default) by :meth:`promote` refits.  ``1`` = inline,
        ``0`` = auto-size to the machine.  Scores are bit-identical at
        any width.
    block_size:
        Row-block override for the blocked sweeps (``None`` = auto).
    shard_id, shard_count:
        The engine's position in a serving cluster (reported through
        :meth:`info`; a standalone engine is shard ``0`` of ``1``).
        Set by :class:`~repro.serving.router.ShardedEngine` when it
        builds its per-shard engines.
    obs:
        Optional :class:`~repro.obs.Observability` handle.  The engine
        always keeps a live metrics registry (a fresh one when this is
        ``None``); pass ``Observability(trace=True)`` to also record
        span trees for queries and promotes.  Scores are bit-identical
        either way.
    faults:
        Optional :class:`~repro.faults.FaultInjector` (or a bare
        :class:`~repro.faults.FaultPlan`) traversed at the engine's
        named fault sites (``promote.refit``).  ``None`` (the default)
        is the null path: one pointer check, no behavior change.
    """

    def __init__(
        self,
        artifact: ModelArtifact,
        cache_size: int = 1024,
        max_iterations: int = 100,
        tol: float = 1e-6,
        num_workers: int = 1,
        block_size: int | None = None,
        shard_id: int = 0,
        shard_count: int = 1,
        obs: Observability | None = None,
        faults=None,
    ) -> None:
        self._setup(
            state=artifact.to_state(),
            artifact=artifact,
            cache_size=cache_size,
            max_iterations=max_iterations,
            tol=tol,
            num_workers=num_workers,
            block_size=block_size,
            shard_id=shard_id,
            shard_count=shard_count,
            obs=obs,
            faults=faults,
        )

    def _setup(
        self,
        state: ModelState,
        artifact: ModelArtifact | None,
        cache_size: int,
        max_iterations: int,
        tol: float,
        num_workers: int,
        block_size: int | None,
        shard_id: int,
        shard_count: int,
        obs: Observability | None = None,
        faults=None,
    ) -> None:
        if cache_size < 0:
            raise ServingError(
                f"cache_size must be >= 0, got {cache_size}"
            )
        if max_iterations < 1:
            raise ServingError(
                f"max_iterations must be >= 1, got {max_iterations}"
            )
        if num_workers < 0:
            raise ServingError(
                f"num_workers must be >= 0 (0 = auto), got {num_workers}"
            )
        if block_size is not None and block_size < 1:
            raise ServingError(
                f"block_size must be >= 1 when set, got {block_size}"
            )
        if shard_count < 1:
            raise ServingError(
                f"shard_count must be >= 1, got {shard_count}"
            )
        if not 0 <= shard_id < shard_count:
            raise ServingError(
                f"shard_id must lie in 0..{shard_count - 1}, "
                f"got {shard_id}"
            )
        self._num_workers = num_workers
        self._block_size = block_size
        self._shard_id = shard_id
        self._shard_count = shard_count
        self._artifact: ModelArtifact | None = artifact
        self._promoted_result = None
        self._state = state
        self._model = self._state.frozen_view()
        self._max_iterations = max_iterations
        self._tol = tol
        self._cache: OrderedDict[tuple, np.ndarray] = OrderedDict()
        self._cache_size = cache_size
        # lifecycle telemetry lives in the obs registry; only the LRU
        # clock stays engine-local (it orders evictions -- policy
        # state, not telemetry)
        self.obs = obs if obs is not None else Observability()
        self._faults = resolve_faults(faults)
        self._metrics = ServingMetrics(self.obs.metrics)
        self._metrics.cache_capacity.set(cache_size)
        self._clock = 0  # monotonic operation counter ("query age")
        self._last_used: dict[object, int] = {}
        # version-stamped similarity caches: per-metric candidate
        # precomputes and per-type candidate masks, both invalidated
        # with the query cache on every delta (and promote, which may
        # reset the version counter)
        self._simcache: dict[str, tuple[int, dict]] = {}
        self._simtypes: dict[str, tuple[int, np.ndarray]] = {}

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def load(
        cls, path: str | Path, mmap: bool = False, **kwargs: Any
    ) -> InferenceEngine:
        """Build an engine straight from an artifact bundle on disk.

        ``mmap=True`` (schema-v3 bundle directories) serves straight
        off lazily-paged read-only maps: cold start touches only the
        pages the first queries read instead of copying the whole
        model up front.  See :func:`repro.serving.artifact.load_artifact`.
        """
        return cls(ModelArtifact.load(path, mmap=mmap), **kwargs)

    @classmethod
    def from_result(cls, result, **kwargs: Any) -> InferenceEngine:
        """Build an engine from an in-memory fit (no disk roundtrip)."""
        return cls(ModelArtifact.from_result(result), **kwargs)

    @classmethod
    def from_state(
        cls,
        state: ModelState,
        cache_size: int = 1024,
        max_iterations: int = 100,
        tol: float = 1e-6,
        num_workers: int = 1,
        block_size: int | None = None,
        shard_id: int = 0,
        shard_count: int = 1,
        obs: Observability | None = None,
        faults=None,
    ) -> InferenceEngine:
        """Build an engine serving an existing lifecycle state directly.

        No artifact round trip: the engine reads and mutates ``state``
        in place.  This is how the cluster router wraps the per-shard
        states of :meth:`~repro.core.state.ModelState.partition` (each
        shard engine shares the frozen base and owns its extension
        space).  :attr:`artifact` is unavailable until a promote
        produces an in-memory result to freeze.
        """
        engine = cls.__new__(cls)
        engine._setup(
            state=state,
            artifact=None,
            cache_size=cache_size,
            max_iterations=max_iterations,
            tol=tol,
            num_workers=num_workers,
            block_size=block_size,
            shard_id=shard_id,
            shard_count=shard_count,
            obs=obs,
            faults=faults,
        )
        return engine

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def artifact(self) -> ModelArtifact:
        """The artifact of the currently served base model (refreshed
        by :meth:`promote`, frozen lazily on first access)."""
        if self._artifact is None:
            if self._promoted_result is None:
                raise ServingError(
                    "this engine serves a shared in-memory state "
                    "(built with from_state) and has no artifact "
                    "bundle; save the original fit, or promote() to "
                    "produce a freezable result"
                )
            self._artifact = ModelArtifact.from_result(
                self._promoted_result
            )
        return self._artifact

    @property
    def state(self) -> ModelState:
        """The shared lifecycle state the engine reads and mutates."""
        return self._state

    @property
    def n_clusters(self) -> int:
        return self._state.n_clusters

    @property
    def num_nodes(self) -> int:
        """Base plus folded-in extension nodes."""
        return self._state.num_nodes

    @property
    def num_base_nodes(self) -> int:
        return self._state.num_base_nodes

    @property
    def num_extension_nodes(self) -> int:
        return self._state.num_extension_nodes

    @property
    def refit_capable(self) -> bool:
        """Whether :meth:`promote` can run (training data available)."""
        return self._state.refit_capable

    def has_node(self, node: object) -> bool:
        return node in self._model.node_index

    def membership_of(self, node: object) -> np.ndarray:
        """Membership row of any served node, base or folded (a copy)."""
        index = self._model.node_index.get(node)
        if index is None:
            raise ServingError(
                f"node {node!r} is not served by this engine"
            )
        self._touch_usage(node)
        return self._model.theta[index].copy()

    def hard_label_of(self, node: object) -> int:
        """Arg-max cluster of any served node."""
        return int(np.argmax(self.membership_of(node)))

    def strengths(self) -> dict[str, float]:
        """Learned per-relation strengths (gamma)."""
        return {
            name: float(g)
            for name, g in zip(
                self._model.relation_names, self._model.gamma
            )
        }

    def metrics_snapshot(self) -> dict[str, Any]:
        """Plain-data snapshot of the engine's metrics registry, with
        the size/occupancy gauges refreshed first.

        This is the export surface: feed it to
        :func:`~repro.obs.render_prometheus` /
        :func:`~repro.obs.render_json`, or let a cluster router
        aggregate it with its peers'.
        """
        state = self._state
        metrics = self._metrics
        metrics.cache_entries.set(len(self._cache))
        metrics.cache_capacity.set(self._cache_size)
        metrics.extension_nodes.set(state.num_extension_nodes)
        metrics.extension_links.set(state.extension_link_count())
        metrics.extension_capacity.set(state.theta_capacity)
        metrics.extension_bytes.set(state.theta_bytes)
        metrics.simcache_entries.set(len(self._simcache))
        metrics.simcache_bytes.set(
            sum(
                topk.precompute_nbytes(pre)
                for _, pre in self._simcache.values()
            )
        )
        return self.obs.metrics.snapshot()

    def info(self) -> dict[str, Any]:
        """Operational snapshot: model shape, strengths, cache stats,
        extension-space telemetry, and fold-in counters.

        The counter-backed sections (``cache`` / ``queries`` /
        ``extension`` / ``foldin``) are derived from
        :meth:`metrics_snapshot` through the shared
        :func:`~repro.serving.telemetry.info_sections` schema -- the
        same derivation :class:`~repro.serving.router.ShardedEngine`
        applies to its aggregated cluster snapshot, stamped with the
        same ``telemetry_version``.
        """
        state = self._state
        # after a promote the served base is an in-memory fit (current
        # schema); otherwise report the loaded bundle's actual version
        schema_version = (
            self._artifact.source_schema_version
            if self._artifact is not None
            else SCHEMA_VERSION
        )
        memory: dict[str, Any] = {
            "schema_version": schema_version,
            "artifact_mapped": bool(
                self._artifact is not None and self._artifact.mapped
            ),
            **state.memory_info(),
        }
        integrity = (
            self._artifact.integrity
            if self._artifact is not None
            else None
        )
        memory.update(
            integrity.stats()
            if integrity is not None
            else {
                "arrays_deferred": 0,
                "arrays_verified": 0,
                "arrays_pending": 0,
            }
        )
        sections = info_sections(self.metrics_snapshot())
        sections["similarity"]["version"] = state.version
        return {
            "schema_version": schema_version,
            "memory": memory,
            "refit_capable": state.refit_capable,
            "n_clusters": self.n_clusters,
            "num_base_nodes": self.num_base_nodes,
            "num_extension_nodes": self.num_extension_nodes,
            "object_types": list(self._model.object_types),
            "relations": self.strengths(),
            "attributes": {
                name: params["kind"]
                for name, params in self._model.attribute_params.items()
            },
            "execution": {
                # the blocked-kernel shape scores run with: pool width
                # (after auto-resolution), the block-size override, and
                # the served index space's block decomposition -- plus
                # the engine's position in a serving cluster (a
                # standalone engine is shard 0 of 1), so cluster and
                # singleton telemetry share one schema
                "num_workers": self._num_workers,
                "pool_width": resolve_workers(self._num_workers),
                "block_size": self._block_size,
                "shard_id": self._shard_id,
                "shard_count": self._shard_count,
                **state.execution_shape(self._block_size),
            },
            **sections,
        }

    # ------------------------------------------------------------------
    # durable deltas
    # ------------------------------------------------------------------
    def extend(self, nodes: Sequence[NewNode]) -> FoldInOutcome:
        """Fold a batch in and append it to the served index space.

        Later queries, extensions, and link deltas may reference the
        appended nodes, and :meth:`promote` will materialize them (and
        their observations) into training data.  The transient-query
        cache is invalidated.
        """
        outcome = fold_in(
            self._model,
            nodes,
            max_iterations=self._max_iterations,
            tol=self._tol,
            num_workers=self._num_workers,
            block_size=self._block_size,
            obs=self.obs,
        )
        self._metrics.foldin_sweeps.inc(outcome.iterations)
        if nodes:
            self._state.append_extensions(tuple(nodes), outcome.theta)
            self._metrics.extends.inc()
            self._clock += 1
            for spec in nodes:
                self._last_used[spec.node] = self._clock
            self._model = self._state.frozen_view()
            self._invalidate_cache()
        return outcome

    def add_links(
        self,
        links: Iterable[tuple[object, str, object] | tuple[object, str, object, float]],
    ) -> FoldInOutcome:
        """Append out-links ``(source, relation, target[, weight])``.

        Sources must be *extension* nodes: base memberships are frozen,
        so a new out-link on a base node could never change a score --
        rejecting it loudly beats silently ignoring it.

        Only the **touched component** is re-folded: the delta's
        sources plus every extension node that reaches one of them via
        out-links (a node's fixed point depends solely on its
        observations and its out-neighbours' memberships, so everything
        outside that reverse-reachable set keeps its row verbatim).
        The re-fold runs against base + untouched extensions, and the
        shared state is only mutated after the whole delta validates.
        """
        state = self._state
        merged: dict[object, list[tuple[str, object, float]]] = {}
        for link in links:
            if len(link) == 3:
                source, relation, target = link
                weight = 1.0
            elif len(link) == 4:
                source, relation, target, weight = link
            else:
                raise ServingError(
                    f"link {link!r} must be "
                    f"(source, relation, target[, weight])"
                )
            if not state.is_extension(source):
                if state.network.has_node(source):
                    raise ServingError(
                        f"node {source!r} belongs to the frozen base "
                        f"model; its membership cannot change, so the "
                        f"engine rejects new out-links on it"
                    )
                raise ServingError(
                    f"link source {source!r} is not served by this "
                    f"engine"
                )
            merged.setdefault(source, []).append(
                (relation, target, float(weight))
            )
        updated: dict[object, NewNode] = {}
        for source, new_links in merged.items():
            spec = state.extension_spec(source)
            updated[source] = NewNode(
                node=spec.node,
                object_type=spec.object_type,
                links=spec.links + tuple(new_links),
                text=spec.text,
                numeric=spec.numeric,
            )
        touched = state.touched_component(merged)
        specs = [
            updated.get(node, state.extension_spec(node))
            for node in touched
        ]
        # validate + score first; commit only on success so a bad delta
        # cannot leave the engine half-updated
        outcome = fold_in(
            self._model.without(touched),
            specs,
            max_iterations=self._max_iterations,
            tol=self._tol,
            num_workers=self._num_workers,
            block_size=self._block_size,
            obs=self.obs,
        )
        self._metrics.foldin_sweeps.inc(outcome.iterations)
        if merged:
            state.commit_link_delta(updated)
            state.replace_extension_rows(touched, outcome.theta)
            self._metrics.link_deltas.inc()
            self._metrics.refolded_rows.inc(len(touched))
            self._clock += 1
            for source in merged:
                self._last_used[source] = self._clock
            self._model = self._state.frozen_view()
        self._invalidate_cache()
        return outcome

    # ------------------------------------------------------------------
    # extension-space management
    # ------------------------------------------------------------------
    def evict(self, max_nodes: int) -> tuple[object, ...]:
        """Shrink the extension space to at most ``max_nodes`` nodes.

        Eviction order is least-recently-used by *query age*: the
        operation clock advances on every delta, and a node's age
        refreshes when it is created, read (:meth:`membership_of`),
        re-linked, or referenced by a transient query.  A node that a
        surviving extension node links to is **pinned** (its membership
        row backs the survivor's future re-folds); pinned nodes are
        skipped and survive even beyond the budget.

        Returns the evicted node ids (oldest first).  Evicted nodes
        leave the served index space entirely -- and will not be part
        of a later :meth:`promote`.
        """
        if max_nodes < 0:
            raise ServingError(
                f"max_nodes must be >= 0, got {max_nodes}"
            )
        state = self._state
        excess = state.num_extension_nodes - max_nodes
        if excess <= 0:
            return ()
        row = state.node_index
        # fully deterministic order: query age, then served row --
        # never set iteration order (nodes extended in one batch share
        # an age, and pin sets are unordered)
        def order_key(node):
            return (self._last_used.get(node, 0), row[node])

        chosen_set = select_lru_victims(
            state.extension_nodes(),
            excess,
            order_key=order_key,
            dependants_of=state.extension_dependants,
            row_of=row.__getitem__,
        )
        if not chosen_set:
            return ()
        # capture the report order before eviction renumbers the rows
        chosen = tuple(sorted(chosen_set, key=order_key))
        self.evict_nodes(chosen_set)
        return chosen

    def evict_nodes(
        self, nodes: Iterable[object]
    ) -> tuple[object, ...]:
        """Evict exactly these extension nodes (in served-row order).

        The mechanism under :meth:`evict`'s LRU policy, exposed so a
        cluster router can run *its* policy globally (ages tracked
        across all shards) and then apply the per-shard verdicts here.
        The state still enforces the safety invariants: only extension
        nodes can go, and a node that a surviving extension node links
        to is refused (its membership row backs the survivor's future
        re-folds).
        """
        chosen_set = set(nodes)
        if not chosen_set:
            return ()
        state = self._state
        row = state.node_index
        chosen = tuple(sorted(chosen_set, key=row.__getitem__))
        state.evict_extensions(chosen_set)
        for node in chosen:
            self._last_used.pop(node, None)
        self._metrics.evictions.inc(len(chosen))
        self._model = state.frozen_view()
        self._invalidate_cache()
        return chosen

    # ------------------------------------------------------------------
    # promotion: refit from extended state
    # ------------------------------------------------------------------
    def promote(
        self, config: GenClusConfig | None = None
    ) -> GenClusResult:
        """Refit from the extended state and serve the promoted model.

        Folded-in nodes, their accumulated links, and their
        observations are materialized into a full clustering problem
        (link views patched from the base fit's operator, not rebuilt)
        and Algorithm 1 runs **warm-started** from the served
        theta/gamma/attribute parameters.  Starting at an
        already-converged interior point, the refit typically needs far
        fewer outer iterations than a cold fit of the same extended
        network -- and its final ``g1`` is verifiable against the cold
        fit's through both results' histories.

        Afterwards the engine serves the promoted model: the returned
        result becomes the new frozen base, the extension space is
        empty, and the query cache is cold.

        Parameters
        ----------
        config:
            Controls for the refit.  Defaults to
            ``GenClusConfig(n_clusters=K)`` with the library's standard
            budgets; ``n_clusters`` must match the served model.

        Raises
        ------
        ServingError
            If the served model is not refit-capable (schema-v1
            artifact: no training links/observations), the config
            disagrees on ``K``, or the refit candidate fails
            validation (non-finite parameters, regressed ``g1``).  On
            any failure the promote **rolls back**: the engine keeps
            serving its current state verbatim and
            ``repro_promote_rollbacks_total`` is incremented.
        """
        # rebase: the promoted fit is the new frozen base; reuse the
        # patched link views (and their operator) for the next cycle.
        # The candidate is built and validated entirely off to the
        # side (promote_state); engine fields mutate only after it
        # returns, so a failed refit cannot disturb serving.
        with self.obs.span(
            "promote", extension_nodes=self.num_extension_nodes
        ):
            tick = time.perf_counter()
            try:
                result, promoted = promote_state(
                    self._state,
                    config,
                    num_workers=self._num_workers,
                    block_size=self._block_size,
                    obs=self.obs,
                    faults=self._faults,
                )
            except Exception:
                self._metrics.promote_rollbacks.inc()
                raise
            self._metrics.promote_seconds.observe(
                time.perf_counter() - tick
            )
        self._state = promoted
        # the served artifact is stale now; refreeze lazily on the next
        # `.artifact` access instead of paying the copies every cycle
        self._artifact = None
        self._promoted_result = result
        self._model = self._state.frozen_view()
        self._last_used = {}
        self._metrics.promotions.inc()
        self._invalidate_cache()
        return result

    # ------------------------------------------------------------------
    # transient queries
    # ------------------------------------------------------------------
    def query(
        self,
        object_type: str,
        links: Sequence[tuple] = (),
        text: Mapping[str, Any] | None = None,
        numeric: Mapping[str, Sequence[float]] | None = None,
    ) -> np.ndarray:
        """Score a hypothetical node without mutating the engine.

        Returns the ``(K,)`` posterior membership.  Identical queries
        are answered from the LRU cache until the next delta.
        """
        try:
            spec = NewNode(
                node=_QUERY_ID,
                object_type=object_type,
                links=tuple(links),
                text=dict(text or {}),
                numeric=dict(numeric or {}),
            )
        except ServingError as exc:
            raise _dequalify(exc) from None
        key = _canonical_key(spec)
        self._metrics.queries.inc()
        self._touch_query_targets(spec)
        cached = self._cache.get(key)
        if cached is not None:
            self._metrics.cache_hits.inc()
            self._cache.move_to_end(key)
            return cached.copy()
        self._metrics.cache_misses.inc()
        try:
            outcome = fold_in(
                self._model,
                [spec],
                max_iterations=self._max_iterations,
                tol=self._tol,
                num_workers=self._num_workers,
                block_size=self._block_size,
                obs=self.obs,
            )
        except ServingError as exc:
            raise _dequalify(exc) from None
        self._metrics.foldin_sweeps.inc(outcome.iterations)
        membership = outcome.theta[0]
        if self._cache_size > 0:
            self._cache[key] = membership.copy()
            while len(self._cache) > self._cache_size:
                self._cache.popitem(last=False)
        return membership.copy()

    def assign(
        self,
        object_type: str,
        links: Sequence[tuple] = (),
        text: Mapping[str, Any] | None = None,
        numeric: Mapping[str, Sequence[float]] | None = None,
    ) -> int:
        """Hard cluster label for a hypothetical node."""
        return int(
            np.argmax(self.query(object_type, links, text, numeric))
        )

    def score_many(
        self, queries: Sequence[Mapping[str, Any]]
    ) -> list[np.ndarray]:
        """Score many transient queries as **one** fold-in batch.

        Each query is a mapping carrying :meth:`query`'s keyword
        arguments (``object_type`` required; ``links`` / ``text`` /
        ``numeric`` optional).  Transient queries are independent --
        they cannot link to each other -- so coalescing them into a
        single batch converges to the same per-query fixed points
        while paying one blocked sweep per iteration instead of one
        sweep per query: the batch request path of the serving
        roadmap at its smallest useful size.

        Queries already memoized are answered from the LRU cache and
        duplicate queries within the call are folded once; every fresh
        result is cached for later single or batched queries.
        Transient rows converge **per row** (each freezes the sweep its
        own change drops below ``tol``), so a batched score is
        bit-identical to the single-query path -- and to any other
        batching of the same queries, including the per-shard
        scatter-gather of a serving cluster.

        Returns one ``(K,)`` posterior membership per query, in input
        order.
        """
        keys: list[tuple] = []

        def on_spec(spec: NewNode) -> None:
            keys.append(_canonical_key(spec))
            self._touch_query_targets(spec)

        specs = compile_transient_queries(queries, on_spec)
        self._metrics.queries.inc(len(specs))
        with self.obs.span("score_many", queries=len(specs)):
            return self.score_specs(specs, keys)

    def score_specs(
        self, specs: Sequence[NewNode], keys: Sequence[tuple]
    ) -> list[np.ndarray]:
        """Score pre-compiled transient specs (the cache + batched
        fold-in half of :meth:`score_many`).

        The cluster router compiles and validates a batch **once** at
        global scope (so error messages carry the caller's positions)
        and hands each shard its slice of ready specs and canonical
        cache keys here, skipping a second validation pass.  ``specs``
        must come from :func:`compile_transient_queries` (or
        equivalent) and ``keys`` must align with them.
        """
        results: dict[int, np.ndarray] = {}
        pending: dict[tuple, list[int]] = {}
        for position, key in enumerate(keys):
            cached = self._cache.get(key)
            if cached is not None:
                self._metrics.cache_hits.inc()
                self._cache.move_to_end(key)
                results[position] = cached.copy()
            else:
                pending.setdefault(key, []).append(position)
        if pending:
            self._metrics.cache_misses.inc(len(pending))
            batch = [
                specs[positions[0]] for positions in pending.values()
            ]
            try:
                outcome = fold_in(
                    self._model,
                    batch,
                    max_iterations=self._max_iterations,
                    tol=self._tol,
                    num_workers=self._num_workers,
                    block_size=self._block_size,
                    obs=self.obs,
                )
            except ServingError as exc:
                raise _dequalify(exc) from None
            self._metrics.foldin_sweeps.inc(outcome.iterations)
            for row, (key, positions) in enumerate(pending.items()):
                membership = outcome.theta[row]
                if self._cache_size > 0:
                    self._cache[key] = membership.copy()
                for position in positions:
                    results[position] = membership.copy()
            if self._cache_size > 0:
                while len(self._cache) > self._cache_size:
                    self._cache.popitem(last=False)
        return [results[position] for position in range(len(specs))]

    def assign_many(
        self, queries: Sequence[Mapping[str, Any]]
    ) -> list[int]:
        """Hard cluster labels for a batch of transient queries."""
        return [
            int(np.argmax(membership))
            for membership in self.score_many(queries)
        ]

    # ------------------------------------------------------------------
    # top-k similarity serving
    # ------------------------------------------------------------------
    def similar(
        self,
        node: object,
        k: int = 10,
        metric: str = "cosine",
        object_type: str | None = None,
    ) -> list[tuple[object, float]]:
        """The ``k`` served nodes most similar to ``node``.

        Candidates are the nodes of ``node``'s own object type (or
        ``object_type`` when given), excluding the query itself.
        Returns ``[(node_id, score), ...]`` in ranking order under the
        deterministic total order (score desc, then global node index
        asc) -- bit-identical at every worker and shard count, and
        equal to the offline :func:`repro.eval.linkpred.reference_ranking`.
        """
        return self.similar_many(
            [node], k=k, metric=metric, object_type=object_type
        )[0]

    def similar_many(
        self,
        nodes: Sequence[object],
        k: int = 10,
        metric: str = "cosine",
        object_type: str | None = None,
    ) -> list[list[tuple[object, float]]]:
        """Answer a batch of :meth:`similar` queries as one blocked scan.

        The whole batch is scored against each served theta block as a
        single matmul and each block keeps only its ``k`` best rows
        (``np.argpartition``, no full sort), so a batch costs one pass
        over theta regardless of its size -- ``O(n*K + n)`` per batch,
        never materializing an ``(m, n)`` score matrix.
        """
        metric = _resolve_metric(metric)
        rows = [self._served_row(node) for node in nodes]
        types = self._model.node_types
        candidate_types = [
            object_type if object_type is not None else types[row]
            for row in rows
        ]
        tick = time.perf_counter()
        with self.obs.span(
            "similar_many", queries=len(rows), k=int(k), metric=metric
        ):
            partials = self.similar_rows_partial(
                rows,
                k,
                metric,
                candidate_types=candidate_types,
                exclude_nodes=[{node} for node in nodes],
            )
        self._metrics.similarity_queries.inc(len(rows))
        self._metrics.similarity_seconds.observe(
            time.perf_counter() - tick
        )
        return [
            self._resolve_rows(scores, found)
            for scores, found in partials
        ]

    def suggest_links(
        self,
        node: object,
        relation: str,
        k: int = 10,
        metric: str = "cosine",
    ) -> list[tuple[object, float]]:
        """Suggest ``k`` link targets for ``node`` under ``relation``.

        The link-prediction protocol of Section 5.2.2, served online:
        candidates are the relation's target-typed nodes, minus the
        query itself and every target it already links to through the
        relation.  ``node`` must have the relation's source type.
        """
        metric = _resolve_metric(metric)
        row = self._served_row(node)
        target_type = self._suggest_target_type(node, relation)
        exclude = {node}
        exclude.update(self._linked_targets(node, relation))
        tick = time.perf_counter()
        with self.obs.span(
            "suggest_links", relation=relation, k=int(k), metric=metric
        ):
            partials = self.similar_rows_partial(
                [row],
                k,
                metric,
                candidate_types=[target_type],
                exclude_nodes=[exclude],
            )
        self._metrics.similarity_queries.inc()
        self._metrics.similarity_seconds.observe(
            time.perf_counter() - tick
        )
        scores, found = partials[0]
        return self._resolve_rows(scores, found)

    def similar_rows_partial(
        self,
        queries: "Sequence[int] | np.ndarray",
        k: int,
        metric: str,
        candidate_types: Sequence[str | None] | None = None,
        exclude_nodes: Sequence[Iterable[object] | None] | None = None,
        base_range: tuple[int, int] | None = None,
    ) -> list[tuple[np.ndarray, np.ndarray]]:
        """Blocked top-k over the rows this engine is responsible for.

        The mechanism under :meth:`similar_many` / :meth:`suggest_links`,
        exposed raw (no telemetry, local row indices instead of node
        ids) so a cluster router can scatter one similarity query
        across shards: each shard scans its **owned** base rows
        (``base_range``, a half-open row range; the full base by
        default) plus its own extensions, and the router merges the
        per-shard shortlists.  ``queries`` is either a sequence of
        local theta row indices (query-side precomputes are gathered
        from the version-stamped cache) or a ``(m, K)`` matrix of raw
        membership vectors (the router's form -- an extension query's
        row exists only on its owner shard, so peers receive the
        vector; both prepartions are bit-identical).  Scan blocks come
        from the state's canonical
        :meth:`~repro.core.state.ModelState.block_plan` clipped to the
        owned ranges and run on the shared kernel pool; results are
        bit-identical at every worker count.
        """
        if k < 1:
            raise ServingError(f"k must be >= 1, got {k}")
        state = self._state
        theta = self._model.theta
        num_base = state.num_base_nodes
        num_nodes = state.num_nodes
        masks = None
        if candidate_types is not None:
            masks = [
                None if name is None else self._type_mask(name)
                for name in candidate_types
            ]
        exclude = None
        if exclude_nodes is not None:
            node_index = self._model.node_index
            exclude = []
            for excluded in exclude_nodes:
                if not excluded:
                    exclude.append(None)
                    continue
                local = sorted(
                    index
                    for index in (
                        node_index.get(node) for node in excluded
                    )
                    if index is not None
                )
                exclude.append(np.asarray(local, dtype=np.int64))
        start, stop = (
            base_range if base_range is not None else (0, num_base)
        )
        ranges = [(max(start, 0), min(stop, num_base))]
        if num_nodes > num_base:
            ranges.append((num_base, num_nodes))
        plan = state.block_plan(self._block_size)
        bounds = []
        for range_start, range_stop in ranges:
            for block_start, block_stop in plan.bounds:
                lo = max(block_start, range_start)
                hi = min(block_stop, range_stop)
                if hi > lo:
                    bounds.append((lo, hi))
        pre = self._similarity_precompute(metric)
        if isinstance(queries, np.ndarray) and queries.ndim == 2:
            num_queries = queries.shape[0]
            prepared = topk.prepare_queries(metric, queries)
        else:
            rows = [int(row) for row in queries]
            num_queries = len(rows)
            prepared = topk.prepare_queries(
                metric, theta[rows], pre, rows
            )
        if not bounds or not num_queries:
            empty = (
                np.empty(0, dtype=np.float64),
                np.empty(0, dtype=np.int64),
            )
            return [empty] * num_queries
        return topk.topk_bounds(
            metric,
            prepared,
            theta,
            k,
            bounds,
            pre,
            num_workers=self._num_workers,
            masks=masks,
            exclude=exclude,
        )

    def _served_row(self, node: object) -> int:
        index = self._model.node_index.get(node)
        if index is None:
            raise ServingError(
                f"node {node!r} is not served by this engine"
            )
        return int(index)

    # ------------------------------------------------------------------
    # shard-handle surface (the transport seam)
    #
    # A cluster router never reaches into a shard's state directly --
    # it speaks the methods below (plus query / score_specs / extend /
    # add_links / evict_nodes / membership_of / similar_rows_partial /
    # info / metrics_snapshot), which is exactly the surface
    # :mod:`repro.serving.transport` carries over a process boundary.
    # An in-process shard handle *is* this engine; a
    # :class:`~repro.serving.transport.ProcessShardHandle` answers the
    # same calls over the wire, bit-identically.
    # ------------------------------------------------------------------
    def served_vector(
        self, node: object
    ) -> tuple[np.ndarray, str]:
        """``(theta_row_copy, node_type)`` of a served node -- the
        payload a router needs to scatter a similarity query whose row
        exists only on this shard."""
        row = self._served_row(node)
        return (
            np.array(self._model.theta[row], dtype=np.float64),
            self._model.node_types[row],
        )

    def suggest_context(
        self, node: object, relation: str
    ) -> tuple[np.ndarray, str, frozenset | None]:
        """Everything a router needs to fan a ``suggest_links`` query
        out: the query vector, the relation's validated target type,
        and -- for an *extension* node, whose accumulated links live on
        this shard -- the already-linked targets to exclude.  For a
        base node the third element is ``None`` (base out-links live in
        the router's training payload, not in serve-only shard
        states)."""
        row = self._served_row(node)
        target_type = self._suggest_target_type(node, relation)
        linked: frozenset | None = None
        if self._state.is_extension(node):
            linked = frozenset(self._linked_targets(node, relation))
        return (
            np.array(self._model.theta[row], dtype=np.float64),
            target_type,
            linked,
        )

    def extension_nodes(self) -> tuple[object, ...]:
        """This shard's extension node ids, in served-row order."""
        return self._state.extension_nodes()

    def extension_export(
        self,
    ) -> tuple[tuple[object, ...], tuple[NewNode, ...], np.ndarray]:
        """``(nodes, specs, theta_rows)`` of every extension this
        shard owns, in served-row order -- the payload a cluster
        promote reassembles in global arrival order."""
        state = self._state
        nodes = state.extension_nodes()
        specs = tuple(state.extension_spec(node) for node in nodes)
        rows = np.empty(
            (len(nodes), state.n_clusters), dtype=np.float64
        )
        for position, node in enumerate(nodes):
            rows[position] = state.theta[state.node_index[node]]
        return nodes, specs, rows

    def extension_dependants(self, node: object) -> frozenset:
        """Extension nodes whose out-links target ``node`` (the
        pinning set a cluster-wide LRU eviction must honour)."""
        return frozenset(self._state.extension_dependants(node))

    def _resolve_rows(
        self, scores: np.ndarray, rows: np.ndarray
    ) -> list[tuple[object, float]]:
        """Map local ``(scores, rows)`` partials to ``(node, score)``."""
        state = self._state
        num_base = state.num_base_nodes
        extensions: tuple[object, ...] | None = None
        resolved = []
        for score, row in zip(scores, rows):
            row = int(row)
            if row < num_base:
                node = state.network.node_at(row)
            else:
                if extensions is None:
                    extensions = state.extension_nodes()
                node = extensions[row - num_base]
            resolved.append((node, float(score)))
        return resolved

    def _suggest_target_type(self, node: object, relation: str) -> str:
        declaration = self._model.relation_types.get(relation)
        if declaration is None:
            raise ServingError(
                f"unknown relation {relation!r}; available: "
                f"{sorted(self._model.relation_types)}"
            )
        source_type, target_type = declaration
        node_type = self._model.node_types[self._served_row(node)]
        if node_type != source_type:
            raise ServingError(
                f"relation {relation!r} links {source_type!r} -> "
                f"{target_type!r}, but node {node!r} has type "
                f"{node_type!r}"
            )
        return target_type

    def _linked_targets(
        self, node: object, relation: str
    ) -> set[object]:
        """Targets ``node`` already links to through ``relation``.

        Extension links live on the node's spec; base links live in
        the training payload, which artifact-backed states decode
        lazily (:meth:`~repro.core.state.ModelState.hydrate`, a no-op
        once decoded).  A serve-only artifact carries no link data at
        all, so its base nodes have nothing to exclude.
        """
        state = self._state
        if state.is_extension(node):
            spec = state.extension_spec(node)
            return {
                target
                for rel, target, _ in spec.links
                if rel == relation
            }
        state.hydrate()
        return {
            target
            for target, _, _ in state.network.out_neighbors(
                node, relation
            )
        }

    def _type_mask(self, object_type: str) -> np.ndarray:
        """Version-stamped boolean candidate mask for one object type.

        Queries of the same candidate type share the cached array
        *object*, which is what lets the blocked scan apply each
        distinct mask to a score panel once per block.
        """
        if object_type not in self._model.object_types:
            raise ServingError(
                f"unknown object type {object_type!r}; available: "
                f"{sorted(self._model.object_types)}"
            )
        version = self._state.version
        entry = self._simtypes.get(object_type)
        if entry is not None and entry[0] == version:
            return entry[1]
        types = self._model.node_types
        mask = np.fromiter(
            (name == object_type for name in types),
            dtype=bool,
            count=len(types),
        )
        self._simtypes[object_type] = (version, mask)
        return mask

    def _similarity_precompute(self, metric: str) -> dict:
        """The metric's candidate precompute, cached per model version."""
        version = self._state.version
        entry = self._simcache.get(metric)
        if entry is not None and entry[0] == version:
            self._metrics.simcache_hits.inc()
            return entry[1]
        self._metrics.simcache_misses.inc()
        pre = topk.precompute(metric, self._model.theta)
        self._simcache[metric] = (version, pre)
        return pre

    # ------------------------------------------------------------------
    def _touch_usage(self, node: object) -> None:
        if self._state.is_extension(node):
            self._clock += 1
            self._last_used[node] = self._clock

    def _touch_query_targets(self, spec: NewNode) -> None:
        """Refresh the LRU age of extension nodes a query links to."""
        touched = [
            target
            for _, target, _ in spec.links
            if self._state.is_extension(target)
        ]
        if touched:
            self._clock += 1
            for target in touched:
                self._last_used[target] = self._clock

    def _invalidate_cache(self) -> None:
        self._cache.clear()
        # similarity precomputes are stamped with the state version,
        # but a promote swaps the state object itself (fresh version
        # counter), so the caches are dropped explicitly alongside the
        # query cache rather than trusting the stamp alone
        dropped = len(self._simcache) + len(self._simtypes)
        if dropped:
            self._metrics.simcache_invalidations.inc(dropped)
        self._simcache.clear()
        self._simtypes.clear()


def compile_transient_queries(
    queries: Sequence[Mapping[str, Any]],
    on_spec=None,
) -> list[NewNode]:
    """Validate a ``score_many`` batch into sentinel-id fold-in specs.

    The argument-checking half of the batch query path, shared by
    :meth:`InferenceEngine.score_many` and the cluster router (which
    must validate -- and report positions -- in the same global order
    before scattering sub-batches to shards).  ``on_spec`` is invoked
    per compiled spec, in order, *before* later queries validate,
    mirroring the engine's touch-as-you-validate semantics.
    """
    allowed = {"object_type", "links", "text", "numeric"}
    specs: list[NewNode] = []
    for position, query in enumerate(queries):
        if not isinstance(query, Mapping):
            raise ServingError(
                f"query #{position}: expected a mapping of query "
                f"arguments, got {type(query).__name__}"
            )
        unknown = set(query) - allowed
        if unknown:
            raise ServingError(
                f"query #{position}: unknown arguments "
                f"{sorted(map(str, unknown))} (allowed: "
                f"{sorted(allowed)})"
            )
        if "object_type" not in query:
            raise ServingError(
                f"query #{position}: object_type is required"
            )
        try:
            spec = NewNode(
                node=(_QUERY_ID, position),
                object_type=query["object_type"],
                links=tuple(query.get("links") or ()),
                text=dict(query.get("text") or {}),
                numeric=dict(query.get("numeric") or {}),
            )
        except ServingError as exc:
            raise _dequalify(exc) from None
        specs.append(spec)
        if on_spec is not None:
            on_spec(spec)
    return specs


_BATCH_QUERY_RE = re.compile(
    r"node \('" + re.escape(_QUERY_ID) + r"', (\d+)\)"
)


def _resolve_metric(metric: str) -> str:
    """Canonical metric name, with alias errors as serving errors."""
    try:
        return topk.resolve_metric(metric)
    except ValueError as exc:
        raise ServingError(str(exc)) from None


def _dequalify(exc: ServingError) -> ServingError:
    """Validation errors name the internal query sentinel ids;
    re-phrase them for users of the transient-query API (both the
    single-query sentinel and the ``(sentinel, position)`` ids of
    ``score_many`` batches)."""
    message = str(exc).replace(f"node {_QUERY_ID!r}", "query")
    return ServingError(_BATCH_QUERY_RE.sub(r"query #\1", message))


def _canonical_key(spec: NewNode) -> tuple:
    """Order-insensitive hashable form of a transient query."""
    links = tuple(
        sorted(
            spec.links,
            key=lambda link: (link[0], str(link[1]), link[2]),
        )
    )
    text_items = []
    for attribute in sorted(spec.text):
        bag = spec.text[attribute]
        if isinstance(bag, Mapping):
            canonical = tuple(
                sorted((str(t), float(c)) for t, c in bag.items())
            )
        else:
            canonical = tuple(sorted(str(t) for t in bag))
        text_items.append((attribute, canonical))
    numeric_items = tuple(
        (attribute, tuple(sorted(float(v) for v in spec.numeric[attribute])))
        for attribute in sorted(spec.numeric)
    )
    return (spec.object_type, links, tuple(text_items), numeric_items)
