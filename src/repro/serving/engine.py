"""The online inference engine: a loaded model that answers queries.

:class:`InferenceEngine` wraps a frozen fitted model and supports two
serving modes:

* **Durable deltas** -- :meth:`InferenceEngine.extend` folds a batch of
  new nodes in and *appends* them to the engine's index space, so later
  queries and deltas can link to them; :meth:`InferenceEngine.add_links`
  accumulates new out-links onto already-folded nodes and re-folds the
  extension (never the frozen base).  The full problem is never
  recompiled; note that ``add_links`` does re-fold the whole extension
  set (new links into an extension node can shift other extension
  nodes transitively), so high-rate streaming deltas should be batched
  (see ROADMAP for the O(delta) follow-up).
* **Transient queries** -- :meth:`InferenceEngine.query` scores a
  hypothetical node (links + observations) without mutating any state.
  Results are memoized in an LRU cache keyed on the canonicalized query,
  so repeated identical queries -- the dominant pattern under serving
  traffic -- cost a dictionary hit.  Any delta invalidates the cache.

Everything learned in the fit stays frozen: base memberships, gamma,
and attribute component parameters are never touched by serving.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Iterable, Mapping, Sequence
from pathlib import Path
from typing import Any

import numpy as np

from repro.exceptions import ServingError
from repro.serving.artifact import SCHEMA_VERSION, ModelArtifact
from repro.serving.foldin import (
    FoldInOutcome,
    FrozenModel,
    NewNode,
    fold_in,
)

_QUERY_ID = "__repro.serving.query__"


class InferenceEngine:
    """Serves cluster-membership queries from a fitted model.

    Parameters
    ----------
    artifact:
        The fitted model to serve.
    cache_size:
        Maximum memoized transient queries (0 disables the cache).
    max_iterations, tol:
        Fold-in fixed-point controls, applied to every scoring path.
    """

    def __init__(
        self,
        artifact: ModelArtifact,
        cache_size: int = 1024,
        max_iterations: int = 100,
        tol: float = 1e-6,
    ) -> None:
        if cache_size < 0:
            raise ServingError(
                f"cache_size must be >= 0, got {cache_size}"
            )
        if max_iterations < 1:
            raise ServingError(
                f"max_iterations must be >= 1, got {max_iterations}"
            )
        self._artifact = artifact
        self._base = FrozenModel.from_artifact(artifact)
        self._model = self._base
        self._extensions: dict[object, NewNode] = {}
        # growable extension state, materialized on the first delta:
        # theta rows live in a doubling-capacity buffer and the node
        # index/type containers are mutated in place, so each extend is
        # amortized O(delta) instead of O(base + total extension)
        self._theta_buf: np.ndarray | None = None
        self._size = self._base.num_nodes
        self._live_index: dict[object, int] | None = None
        self._live_types: list[str] | None = None
        self._max_iterations = max_iterations
        self._tol = tol
        self._cache: OrderedDict[tuple, np.ndarray] = OrderedDict()
        self._cache_size = cache_size
        self._hits = 0
        self._misses = 0

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def load(cls, path: str | Path, **kwargs: Any) -> InferenceEngine:
        """Build an engine straight from an artifact bundle on disk."""
        return cls(ModelArtifact.load(path), **kwargs)

    @classmethod
    def from_result(cls, result, **kwargs: Any) -> InferenceEngine:
        """Build an engine from an in-memory fit (no disk roundtrip)."""
        return cls(ModelArtifact.from_result(result), **kwargs)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def artifact(self) -> ModelArtifact:
        """The artifact the engine was built from (frozen base model)."""
        return self._artifact

    @property
    def n_clusters(self) -> int:
        return self._model.n_clusters

    @property
    def num_nodes(self) -> int:
        """Base plus folded-in extension nodes."""
        return self._model.num_nodes

    @property
    def num_base_nodes(self) -> int:
        return self._base.num_nodes

    @property
    def num_extension_nodes(self) -> int:
        return self._model.num_nodes - self._base.num_nodes

    def has_node(self, node: object) -> bool:
        return node in self._model.node_index

    def membership_of(self, node: object) -> np.ndarray:
        """Membership row of any served node, base or folded (a copy)."""
        index = self._model.node_index.get(node)
        if index is None:
            raise ServingError(
                f"node {node!r} is not served by this engine"
            )
        return self._model.theta[index].copy()

    def hard_label_of(self, node: object) -> int:
        """Arg-max cluster of any served node."""
        return int(np.argmax(self.membership_of(node)))

    def strengths(self) -> dict[str, float]:
        """Learned per-relation strengths (gamma)."""
        return {
            name: float(g)
            for name, g in zip(
                self._model.relation_names, self._model.gamma
            )
        }

    def info(self) -> dict[str, Any]:
        """Operational snapshot: model shape, strengths, cache stats."""
        return {
            "schema_version": SCHEMA_VERSION,
            "n_clusters": self.n_clusters,
            "num_base_nodes": self.num_base_nodes,
            "num_extension_nodes": self.num_extension_nodes,
            "object_types": list(self._model.object_types),
            "relations": self.strengths(),
            "attributes": {
                name: params["kind"]
                for name, params in self._model.attribute_params.items()
            },
            "cache": {
                "size": len(self._cache),
                "max_size": self._cache_size,
                "hits": self._hits,
                "misses": self._misses,
            },
        }

    # ------------------------------------------------------------------
    # durable deltas
    # ------------------------------------------------------------------
    def extend(self, nodes: Sequence[NewNode]) -> FoldInOutcome:
        """Fold a batch in and append it to the served index space.

        Later queries, extensions, and link deltas may reference the
        appended nodes.  The transient-query cache is invalidated.
        """
        outcome = fold_in(
            self._model,
            nodes,
            max_iterations=self._max_iterations,
            tol=self._tol,
        )
        if nodes:
            self._append(nodes, outcome.theta)
            for spec in nodes:
                self._extensions[spec.node] = spec
            self._invalidate_cache()
        return outcome

    def add_links(
        self,
        links: Iterable[tuple[object, str, object] | tuple[object, str, object, float]],
    ) -> FoldInOutcome:
        """Append out-links ``(source, relation, target[, weight])``.

        Sources must be *extension* nodes: base memberships are frozen,
        so a new out-link on a base node could never change a score --
        rejecting it loudly beats silently ignoring it.  The extension
        is then re-folded against the frozen base with the accumulated
        link sets, and the served rows are refreshed in place.
        """
        merged: dict[object, list[tuple[str, object, float]]] = {}
        for link in links:
            if len(link) == 3:
                source, relation, target = link
                weight = 1.0
            elif len(link) == 4:
                source, relation, target, weight = link
            else:
                raise ServingError(
                    f"link {link!r} must be "
                    f"(source, relation, target[, weight])"
                )
            if source not in self._extensions:
                if source in self._base.node_index:
                    raise ServingError(
                        f"node {source!r} belongs to the frozen base "
                        f"model; its membership cannot change, so the "
                        f"engine rejects new out-links on it"
                    )
                raise ServingError(
                    f"link source {source!r} is not served by this "
                    f"engine"
                )
            merged.setdefault(source, []).append(
                (relation, target, float(weight))
            )
        updated = dict(self._extensions)
        for source, new_links in merged.items():
            spec = updated[source]
            updated[source] = NewNode(
                node=spec.node,
                object_type=spec.object_type,
                links=spec.links + tuple(new_links),
                text=spec.text,
                numeric=spec.numeric,
            )
        # validate + score first; commit only on success so a bad delta
        # cannot leave the engine half-updated
        specs = list(updated.values())
        outcome = fold_in(
            self._base,
            specs,
            max_iterations=self._max_iterations,
            tol=self._tol,
        )
        self._extensions = updated
        if specs:
            # `updated` preserves the original extension order, so the
            # re-folded rows land exactly on their existing slots -- the
            # index/type containers and the served view are unchanged
            self._theta_buf[self._base.num_nodes : self._size] = (
                outcome.theta
            )
        self._invalidate_cache()
        return outcome

    def _append(
        self, nodes: Sequence[NewNode], theta_new: np.ndarray
    ) -> None:
        """Append freshly folded rows to the growable served model.

        Amortized ``O(len(nodes))``: the theta buffer doubles its
        capacity geometrically (one base copy on the first delta, then
        row writes), and the node index/type containers are mutated in
        place.  A new :class:`FrozenModel` façade is assembled per
        delta, but it only holds references -- no per-delta copy of the
        base state.
        """
        base = self._base
        k = base.n_clusters
        if self._theta_buf is None:
            capacity = base.num_nodes + max(len(nodes), 64)
            self._theta_buf = np.empty((capacity, k))
            self._theta_buf[: base.num_nodes] = base.theta
            self._live_index = dict(base.node_index)
            self._live_types = list(base.node_types)
        needed = self._size + len(nodes)
        if needed > self._theta_buf.shape[0]:
            capacity = max(needed, 2 * self._theta_buf.shape[0])
            grown = np.empty((capacity, k))
            grown[: self._size] = self._theta_buf[: self._size]
            self._theta_buf = grown
        self._theta_buf[self._size : needed] = theta_new
        for offset, spec in enumerate(nodes):
            self._live_index[spec.node] = self._size + offset
            self._live_types.append(spec.object_type)
        self._size = needed
        served = FrozenModel(
            theta=self._theta_buf[: self._size],
            gamma=base.gamma,
            relation_names=base.relation_names,
            relation_types=base.relation_types,
            object_types=base.object_types,
            node_index=self._live_index,
            node_types=self._live_types,
            attribute_params=base.attribute_params,
        )
        # carry the per-model vocabulary cache across deltas (it only
        # depends on the frozen attribute params)
        served.__dict__["vocabulary_index"] = self._model.vocabulary_index
        self._model = served

    # ------------------------------------------------------------------
    # transient queries
    # ------------------------------------------------------------------
    def query(
        self,
        object_type: str,
        links: Sequence[tuple] = (),
        text: Mapping[str, Any] | None = None,
        numeric: Mapping[str, Sequence[float]] | None = None,
    ) -> np.ndarray:
        """Score a hypothetical node without mutating the engine.

        Returns the ``(K,)`` posterior membership.  Identical queries
        are answered from the LRU cache until the next delta.
        """
        try:
            spec = NewNode(
                node=_QUERY_ID,
                object_type=object_type,
                links=tuple(links),
                text=dict(text or {}),
                numeric=dict(numeric or {}),
            )
        except ServingError as exc:
            raise _dequalify(exc) from None
        key = _canonical_key(spec)
        cached = self._cache.get(key)
        if cached is not None:
            self._hits += 1
            self._cache.move_to_end(key)
            return cached.copy()
        self._misses += 1
        try:
            outcome = fold_in(
                self._model,
                [spec],
                max_iterations=self._max_iterations,
                tol=self._tol,
            )
        except ServingError as exc:
            raise _dequalify(exc) from None
        membership = outcome.theta[0]
        if self._cache_size > 0:
            self._cache[key] = membership.copy()
            while len(self._cache) > self._cache_size:
                self._cache.popitem(last=False)
        return membership.copy()

    def assign(
        self,
        object_type: str,
        links: Sequence[tuple] = (),
        text: Mapping[str, Any] | None = None,
        numeric: Mapping[str, Sequence[float]] | None = None,
    ) -> int:
        """Hard cluster label for a hypothetical node."""
        return int(
            np.argmax(self.query(object_type, links, text, numeric))
        )

    def _invalidate_cache(self) -> None:
        self._cache.clear()


def _dequalify(exc: ServingError) -> ServingError:
    """Validation errors name the internal query sentinel id;
    re-phrase them for users of the transient-query API."""
    return ServingError(
        str(exc).replace(f"node {_QUERY_ID!r}", "query")
    )


def _canonical_key(spec: NewNode) -> tuple:
    """Order-insensitive hashable form of a transient query."""
    links = tuple(
        sorted(
            spec.links,
            key=lambda link: (link[0], str(link[1]), link[2]),
        )
    )
    text_items = []
    for attribute in sorted(spec.text):
        bag = spec.text[attribute]
        if isinstance(bag, Mapping):
            canonical = tuple(
                sorted((str(t), float(c)) for t, c in bag.items())
            )
        else:
            canonical = tuple(sorted(str(t) for t in bag))
        text_items.append((attribute, canonical))
    numeric_items = tuple(
        (attribute, tuple(sorted(float(v) for v in spec.numeric[attribute])))
        for attribute in sorted(spec.numeric)
    )
    return (spec.object_type, links, tuple(text_items), numeric_items)
