"""Versioned persistence of a fitted GenClus model.

A fitted model is frozen into a :class:`ModelArtifact` -- everything the
serving layer needs to answer membership queries without refitting:

* the ``(n, K)`` membership matrix Theta and the strength vector gamma,
* the relation list (fixing gamma's order) and the relation type
  declarations (for validating fold-in links),
* the node id / object-type map (fixing Theta's row order),
* the learned attribute component parameters (beta / mu, sigma^2) with
  their vocabularies,
* the per-outer-iteration diagnostics history (scalar fields only; the
  variable-length inner-EM objective traces are not persisted).

On disk an artifact is a **single ``.npz`` bundle**: every numeric array
is stored under a registry key, and one ``manifest`` entry carries a
UTF-8 JSON document with the schema version, the structural metadata, and
the array registry.  ``np.load`` never needs ``allow_pickle`` -- the
format is plain arrays plus JSON, so loading untrusted artifacts cannot
execute code.

Versioning: ``SCHEMA_VERSION`` is bumped whenever the layout changes;
:func:`load_artifact` rejects bundles whose major version it does not
understand with a :class:`~repro.exceptions.SerializationError` naming
both versions.

Training *edges* are deliberately not persisted: frozen base rows never
re-read their neighbours (only new nodes' out-links enter the fold-in
update), so the bundle stays ``O(nK)`` instead of ``O(|E|)``.  The
network reconstructed by :meth:`ModelArtifact.to_result` therefore has
nodes and schema but no links.
"""

from __future__ import annotations

import json
import zipfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any

import numpy as np

from repro.core.diagnostics import IterationRecord, RunHistory
from repro.core.result import GenClusResult
from repro.exceptions import SerializationError
from repro.hin.network import HeterogeneousNetwork
from repro.hin.schema import NetworkSchema

FORMAT = "repro.serving/artifact"
SCHEMA_VERSION = 1

_SCALARS = (str, int, float, bool)


@dataclass(frozen=True)
class ModelArtifact:
    """A fitted model frozen for persistence and serving.

    Attributes
    ----------
    theta:
        ``(n, K)`` membership matrix, rows ordered like ``node_ids``.
    gamma:
        ``(R,)`` strengths aligned with ``relation_names``.
    relation_names:
        Relations that carried links in the fit (gamma order).
    relation_types:
        ``{relation: (source_type, target_type)}`` for *every* relation
        declared in the training schema -- fold-in validates new links
        against these.
    node_ids:
        All fitted node ids in index order (JSON scalars).
    node_types:
        Object type of each node, aligned with ``node_ids``.
    object_types:
        All object type names declared in the training schema.
    attribute_params:
        Learned per-attribute component parameters, in the shape
        :class:`~repro.core.result.GenClusResult` uses.
    history:
        The fit's :class:`~repro.core.diagnostics.RunHistory`.
    """

    theta: np.ndarray
    gamma: np.ndarray
    relation_names: tuple[str, ...]
    relation_types: dict[str, tuple[str, str]]
    node_ids: tuple[object, ...]
    node_types: tuple[str, ...]
    object_types: tuple[str, ...]
    attribute_params: dict[str, dict]
    history: RunHistory

    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return int(self.theta.shape[0])

    @property
    def n_clusters(self) -> int:
        return int(self.theta.shape[1])

    def node_index(self) -> dict[object, int]:
        """``{node id: theta row}`` (a fresh dict)."""
        return {node: i for i, node in enumerate(self.node_ids)}

    # ------------------------------------------------------------------
    @classmethod
    def from_result(cls, result: GenClusResult) -> ModelArtifact:
        """Freeze a fit into an artifact (arrays are copied)."""
        network = result.network
        for node in network.node_ids:
            if not isinstance(node, _SCALARS):
                raise SerializationError(
                    f"node id {node!r} is not a JSON scalar; only "
                    f"str/int/float/bool ids can be persisted"
                )
        relation_types = {
            rel.name: (rel.source, rel.target)
            for rel in network.schema.relations
        }
        return cls(
            theta=np.asarray(result.theta, dtype=np.float64).copy(),
            gamma=np.asarray(result.gamma, dtype=np.float64).copy(),
            relation_names=tuple(result.relation_names),
            relation_types=relation_types,
            node_ids=tuple(network.node_ids),
            node_types=tuple(
                network.type_at(i) for i in range(network.num_nodes)
            ),
            object_types=tuple(
                t.name for t in network.schema.object_types
            ),
            attribute_params=_copy_params(result.attribute_params),
            history=result.history,
        )

    def to_result(self) -> GenClusResult:
        """Rebuild a :class:`GenClusResult` (node-only network, no links)."""
        schema = NetworkSchema()
        for name in self.object_types:
            schema.add_object_type(name)
        for name, (source, target) in self.relation_types.items():
            schema.add_relation(name, source, target)
        network = HeterogeneousNetwork(schema)
        for node, object_type in zip(self.node_ids, self.node_types):
            network.add_node(node, object_type)
        return GenClusResult(
            theta=self.theta.copy(),
            gamma=self.gamma.copy(),
            relation_names=self.relation_names,
            attribute_params=_copy_params(self.attribute_params),
            history=self.history,
            network=network,
        )

    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> Path:
        """Write the artifact as a single ``.npz`` bundle; returns path."""
        return save_artifact(self, path)

    @classmethod
    def load(cls, path: str | Path) -> ModelArtifact:
        """Read an artifact written by :meth:`save`."""
        return load_artifact(path)

    def summary(self) -> str:
        """Readable overview of the persisted model."""
        lines = [
            f"GenClus artifact (schema v{SCHEMA_VERSION}): "
            f"{self.num_nodes} nodes, K={self.n_clusters}",
            "object types: " + ", ".join(self.object_types),
            "link-type strengths:",
        ]
        for name, gamma in sorted(
            zip(self.relation_names, self.gamma), key=lambda kv: -kv[1]
        ):
            lines.append(f"  {name:<24} {float(gamma):>10.4f}")
        for name, params in self.attribute_params.items():
            if params["kind"] == "categorical":
                detail = f"vocabulary of {len(params['vocabulary'])}"
            else:
                detail = f"{params['means'].shape[0]} components"
            lines.append(f"attribute {name!r}: {params['kind']}, {detail}")
        lines.append(
            f"outer iterations recorded: {len(self.history)}"
        )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# on-disk format
# ----------------------------------------------------------------------
def save_artifact(artifact: ModelArtifact, path: str | Path) -> Path:
    """Serialize to one ``.npz``: arrays + a JSON ``manifest`` entry."""
    path = Path(path)
    arrays: dict[str, np.ndarray] = {
        "theta": np.asarray(artifact.theta, dtype=np.float64),
        "gamma": np.asarray(artifact.gamma, dtype=np.float64),
    }
    attributes: list[dict[str, Any]] = []
    for name, params in artifact.attribute_params.items():
        entry: dict[str, Any] = {"name": name, "kind": params["kind"]}
        if params["kind"] == "categorical":
            arrays[f"attr/{name}/beta"] = np.asarray(
                params["beta"], dtype=np.float64
            )
            entry["vocabulary"] = list(params["vocabulary"])
        elif params["kind"] == "gaussian":
            arrays[f"attr/{name}/means"] = np.asarray(
                params["means"], dtype=np.float64
            )
            arrays[f"attr/{name}/variances"] = np.asarray(
                params["variances"], dtype=np.float64
            )
        else:  # pragma: no cover - defensive
            raise SerializationError(
                f"attribute {name!r} has unknown kind {params['kind']!r}"
            )
        attributes.append(entry)

    records = artifact.history.records
    arrays["history/gamma"] = (
        np.stack([r.gamma for r in records])
        if records
        else np.zeros((0, len(artifact.relation_names)))
    )
    arrays["history/scalars"] = np.asarray(
        [
            [
                float(r.outer_iteration),
                r.g1_value,
                r.g2_value,
                float(r.em_iterations),
                float(r.newton_iterations),
                r.em_seconds,
                r.newton_seconds,
            ]
            for r in records
        ],
        dtype=np.float64,
    ).reshape(len(records), 7)

    manifest = {
        "format": FORMAT,
        "schema_version": SCHEMA_VERSION,
        "n_clusters": artifact.n_clusters,
        "relation_names": list(artifact.relation_names),
        "relation_types": {
            name: list(pair)
            for name, pair in artifact.relation_types.items()
        },
        "object_types": list(artifact.object_types),
        "nodes": [
            {"id": node, "type": typ}
            for node, typ in zip(artifact.node_ids, artifact.node_types)
        ],
        "attributes": attributes,
        "arrays": sorted(arrays),
    }
    arrays["manifest"] = np.frombuffer(
        json.dumps(manifest).encode("utf-8"), dtype=np.uint8
    )
    with path.open("wb") as handle:
        np.savez_compressed(handle, **arrays)
    return path


def load_artifact(path: str | Path) -> ModelArtifact:
    """Deserialize an artifact bundle, checking format and version."""
    path = Path(path)
    try:
        with np.load(path, allow_pickle=False) as bundle:
            payload = {key: bundle[key] for key in bundle.files}
    except (OSError, ValueError, zipfile.BadZipFile) as exc:
        raise SerializationError(
            f"{path} is not a readable artifact bundle: {exc}"
        ) from exc
    if "manifest" not in payload:
        raise SerializationError(
            f"{path} has no manifest entry; not a serving artifact"
        )
    try:
        manifest = json.loads(bytes(payload["manifest"]).decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SerializationError(
            f"{path} carries a malformed manifest: {exc}"
        ) from exc
    if manifest.get("format") != FORMAT:
        raise SerializationError(
            f"unsupported format marker {manifest.get('format')!r}; "
            f"expected {FORMAT!r}"
        )
    version = manifest.get("schema_version")
    if version != SCHEMA_VERSION:
        raise SerializationError(
            f"artifact schema version {version!r} is not supported by "
            f"this library (supported: {SCHEMA_VERSION}); "
            f"re-export the model or upgrade the library"
        )
    try:
        return _decode(manifest, payload)
    except (KeyError, TypeError, IndexError) as exc:
        raise SerializationError(
            f"malformed artifact payload in {path}: {exc}"
        ) from exc


def _decode(
    manifest: dict[str, Any], payload: dict[str, np.ndarray]
) -> ModelArtifact:
    missing = [key for key in manifest["arrays"] if key not in payload]
    if missing:
        raise SerializationError(
            f"artifact is missing declared arrays: {missing}"
        )
    theta = np.asarray(payload["theta"], dtype=np.float64)
    gamma = np.asarray(payload["gamma"], dtype=np.float64)
    relation_names = tuple(manifest["relation_names"])
    if theta.ndim != 2:
        raise SerializationError(
            f"theta must be 2-D, got shape {theta.shape}"
        )
    if theta.shape[1] != int(manifest["n_clusters"]):
        raise SerializationError(
            f"theta has {theta.shape[1]} columns but the manifest "
            f"declares n_clusters={manifest['n_clusters']}"
        )
    nodes = manifest["nodes"]
    if theta.shape[0] != len(nodes):
        raise SerializationError(
            f"theta has {theta.shape[0]} rows but the manifest lists "
            f"{len(nodes)} nodes"
        )
    if gamma.shape != (len(relation_names),):
        raise SerializationError(
            f"gamma has shape {gamma.shape} but the manifest lists "
            f"{len(relation_names)} relations"
        )

    attribute_params: dict[str, dict] = {}
    for entry in manifest["attributes"]:
        name = entry["name"]
        if entry["kind"] == "categorical":
            attribute_params[name] = {
                "kind": "categorical",
                "beta": np.asarray(
                    payload[f"attr/{name}/beta"], dtype=np.float64
                ),
                "vocabulary": tuple(entry["vocabulary"]),
            }
        elif entry["kind"] == "gaussian":
            attribute_params[name] = {
                "kind": "gaussian",
                "means": np.asarray(
                    payload[f"attr/{name}/means"], dtype=np.float64
                ),
                "variances": np.asarray(
                    payload[f"attr/{name}/variances"], dtype=np.float64
                ),
            }
        else:
            raise SerializationError(
                f"unknown attribute kind {entry['kind']!r}"
            )

    history = RunHistory(relation_names=relation_names)
    gammas = payload["history/gamma"]
    scalars = payload["history/scalars"]
    for row, gamma_row in zip(scalars, gammas):
        history.append(
            IterationRecord(
                outer_iteration=int(row[0]),
                gamma=np.asarray(gamma_row, dtype=np.float64),
                g1_value=float(row[1]),
                g2_value=float(row[2]),
                em_iterations=int(row[3]),
                newton_iterations=int(row[4]),
                em_seconds=float(row[5]),
                newton_seconds=float(row[6]),
            )
        )

    return ModelArtifact(
        theta=theta,
        gamma=gamma,
        relation_names=relation_names,
        relation_types={
            name: (pair[0], pair[1])
            for name, pair in manifest["relation_types"].items()
        },
        node_ids=tuple(entry["id"] for entry in nodes),
        node_types=tuple(entry["type"] for entry in nodes),
        object_types=tuple(manifest["object_types"]),
        attribute_params=attribute_params,
        history=history,
    )


def _copy_params(params: dict[str, dict]) -> dict[str, dict]:
    """Deep-enough copy of the attribute parameter dict (arrays copied)."""
    copied: dict[str, dict] = {}
    for name, entry in params.items():
        fresh = dict(entry)
        for key in ("beta", "means", "variances"):
            if key in fresh:
                fresh[key] = np.asarray(
                    fresh[key], dtype=np.float64
                ).copy()
        copied[name] = fresh
    return copied
