"""Versioned persistence of a fitted GenClus model.

A fitted model is frozen into a :class:`ModelArtifact` -- everything the
serving layer needs to answer membership queries without refitting:

* the ``(n, K)`` membership matrix Theta and the strength vector gamma,
* the relation list (fixing gamma's order) and the relation type
  declarations (for validating fold-in links),
* the node id / object-type map (fixing Theta's row order),
* the learned attribute component parameters (beta / mu, sigma^2) with
  their vocabularies,
* the per-outer-iteration diagnostics history (scalar fields only; the
  variable-length inner-EM objective traces are not persisted).

On disk an artifact is either a legacy **single ``.npz`` bundle**
(schemas v1/v2: every numeric array under a registry key plus one
``manifest`` entry carrying a UTF-8 JSON document) or, since **schema
v3**, a **bundle directory**: one raw ``.npy`` file per array under
``arrays/`` plus the same JSON manifest as ``manifest.json``.
``np.load`` never needs ``allow_pickle`` in either layout -- the format
is plain arrays plus JSON, so loading untrusted artifacts cannot
execute code.

The v3 layout exists for **memory-mapped loading**: raw ``.npy`` files
open with ``np.load(..., mmap_mode="r")``, so
``load_artifact(path, mmap=True)`` returns lazily-paged read-only
views instead of eager copies -- cold start touches only the pages the
first queries actually read (``O(pages touched)``, not
``O(model size)``), and every shard partitioned from the state maps
the same frozen base instead of copying it.  Integrity is reconciled
**lazily**: under ``mmap=True`` the large arrays (theta, the edge
lists, the observation tables) carry their manifest CRC32s in an
:class:`ArtifactIntegrity` guard and are verified on **first
materialization** (the first private writable copy: theta growth in
``extend``, the refit path's hydration) rather than at load; the small
arrays (gamma, attribute parameters, history) verify eagerly as
before, and ``mmap=False`` keeps the fully eager verification of
schemas v1/v2.  Mutating paths never write through the map --
``np.load``'s ``"r"`` mode hands out genuinely read-only pages, and
every growth/refit path copies first (copy-on-write by construction).

Versioning: ``SCHEMA_VERSION`` is bumped whenever the layout changes;
:func:`load_artifact` rejects bundles whose major version it does not
understand with a :class:`~repro.exceptions.SerializationError` naming
both versions.  ``save_artifact(..., schema_version=2)`` still writes
the single-file ``.npz`` layout (``compress=False`` trades size for
save/load speed), and v1/v2 bundles keep loading eagerly -- ``mmap``
silently falls back to an eager load there (compressed zip members
cannot be paged).

**Schema v2** additionally embeds the *training data* -- the link lists
of every fitted relation and the raw attribute observation tables --
whenever the saved result still carries them (any fresh fit does).
That makes a reloaded model **refit-capable**: the network rebuilt by
:meth:`ModelArtifact.to_result` has its edges and observations back,
and :meth:`ModelArtifact.to_state` yields a
:class:`~repro.core.state.ModelState` that can warm-start a full new
``GenClus`` fit (the lifecycle loop: fit -> save -> load -> extend ->
promote).  The bundle grows from ``O(nK)`` to
``O(nK + |E| + |obs|)``; pass ``schema_version=1`` to
:func:`save_artifact` for the old serve-only layout.  **Schema v1
bundles still load** -- they reconstruct a serve-only model (nodes and
schema, no links), exactly as before.
"""

from __future__ import annotations

import json
import os
import shutil
import threading
import time
import zipfile
import zlib
from collections.abc import Mapping
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any

import numpy as np
from scipy import sparse

from repro.core.diagnostics import IterationRecord, RunHistory
from repro.core.result import GenClusResult
from repro.core.state import training_data_available
from repro.exceptions import SerializationError
from repro.faults import resolve_faults
from repro.hin.attributes import (
    NumericAttribute,
    TextAttribute,
)
from repro.hin.network import HeterogeneousNetwork
from repro.hin.schema import NetworkSchema

FORMAT = "repro.serving/artifact"
SCHEMA_VERSION = 3
SUPPORTED_VERSIONS = (1, 2, 3)
MANIFEST_NAME = "manifest.json"

_SCALARS = (str, int, float, bool)


def _lazy_array_names(names) -> set[str]:
    """The arrays big enough to stay memory-mapped under ``mmap=True``
    (their CRC32 verification is deferred to first materialization):
    theta plus the embedded training payload.  Everything else --
    gamma, attribute parameters, the history -- is ``O(K)``-ish and
    verifies eagerly at load."""
    return {
        name
        for name in names
        if name == "theta" or name.startswith(("edges/", "obs/"))
    }


def _deferred_open_names(names) -> set[str]:
    """Arrays whose *files* are not even opened at load time under
    ``mmap=True``: the embedded training payload, which nothing reads
    before refit hydration.  (theta is also checksum-deferred but opens
    eagerly -- the first query pages it in.)  A serve-only cold start
    therefore opens a handful of small files, not one per relation and
    attribute."""
    return {
        name for name in names if name.startswith(("edges/", "obs/"))
    }


class _LazyPayload(dict):
    """Array payload of a mapped v3 bundle.

    Deferred members (:func:`_deferred_open_names`) open on first
    ``[]`` access instead of at load time; ``in`` reports them as
    present so the manifest's missing-array accounting still works.
    A deferred file that is corrupt or has vanished fails on first
    access with the same path-and-array-naming
    :class:`~repro.exceptions.SerializationError` the eager load
    raises."""

    def __init__(self, bundle: Path) -> None:
        super().__init__()
        self.deferred: dict[str, Path] = {}
        self._bundle = bundle

    def __missing__(self, name: str) -> np.ndarray:
        member = self.deferred[name]  # KeyError: genuinely absent
        value = _open_member(self._bundle, name, member, mmap=True)
        self[name] = value
        return value

    def __contains__(self, name: object) -> bool:
        return super().__contains__(name) or name in self.deferred


class _LazyTable(Mapping):
    """Read-only mapping whose values build on first access (the
    per-relation edge triples / per-attribute observation tables of a
    mapped artifact -- building them eagerly would open every deferred
    payload file at load time)."""

    def __init__(self, keys, build) -> None:
        self._keys = tuple(keys)
        self._build = build
        self._cache: dict[str, Any] = {}

    def __getitem__(self, key):
        if key not in self._cache:
            if key not in self._keys:
                raise KeyError(key)
            self._cache[key] = self._build(key)
        return self._cache[key]

    def __iter__(self):
        return iter(self._keys)

    def __len__(self) -> int:
        return len(self._keys)


class ArtifactIntegrity:
    """Deferred per-array CRC32 verification for memory-mapped bundles.

    Under ``mmap=True`` the big arrays stay lazily paged, so checking
    their checksums at load would read every page and defeat the
    ``O(pages touched)`` cold start.  This guard carries the
    manifest's recorded CRC32s instead and verifies each array the
    first time something **materializes** it -- makes a private
    writable copy or reads it end to end anyway (theta growth on the
    first ``extend``, the refit path's training-payload hydration,
    ``to_result``).  Verification is idempotent and thread-safe: the
    first verifier pays the CRC pass, later calls are a set lookup.
    A mismatch raises :class:`~repro.exceptions.SerializationError`
    naming the bundle path and the failing array, exactly like the
    eager check -- and keeps the array unverified, so every further
    materialization attempt fails too.
    """

    def __init__(
        self,
        path: Path,
        checksums: dict[str, int],
        arrays: dict[str, np.ndarray],
        lazy: set[str],
    ) -> None:
        self._path = Path(path)
        self._checksums = dict(checksums)
        # hold the payload mapping, not materialized arrays: deferred
        # members must not open their files until something verifies
        # (= materializes) them
        self._payload = arrays
        self._pending = {name for name in lazy if name in arrays}
        self._deferred_total = len(self._pending)
        self._verified: set[str] = set()
        self._lock = threading.Lock()

    @property
    def path(self) -> Path:
        return self._path

    def verify(self, *names: str) -> None:
        """Verify the named arrays now (no-op for already-verified or
        unknown names)."""
        for name in names:
            with self._lock:
                if name not in self._pending:
                    continue
                array = self._payload[name]
                actual = zlib.crc32(
                    np.ascontiguousarray(array).tobytes()
                )
                expected = int(self._checksums[name])
                if actual != expected:
                    raise SerializationError(
                        f"{self._path}: checksum mismatch for array "
                        f"{name!r} on first materialization (manifest "
                        f"records crc32={expected}, got {actual}); "
                        f"the bundle is corrupt or was modified after "
                        f"save. Pass verify_checksums=False to load "
                        f"anyway."
                    )
                self._pending.discard(name)
                self._verified.add(name)

    def verify_prefix(self, *prefixes: str) -> None:
        """Verify every pending array under the given key prefixes."""
        with self._lock:
            matching = [
                name
                for name in self._pending
                if name.startswith(prefixes)
            ]
        self.verify(*matching)

    def verify_pending(self) -> None:
        """Verify everything still unverified (full materialization)."""
        with self._lock:
            matching = list(self._pending)
        self.verify(*matching)

    def stats(self) -> dict[str, int]:
        """Telemetry: deferred-array counts for ``engine.info()``."""
        with self._lock:
            return {
                "arrays_deferred": self._deferred_total,
                "arrays_verified": len(self._verified),
                "arrays_pending": len(self._pending),
            }


@dataclass(frozen=True)
class ModelArtifact:
    """A fitted model frozen for persistence and serving.

    Attributes
    ----------
    theta:
        ``(n, K)`` membership matrix, rows ordered like ``node_ids``.
    gamma:
        ``(R,)`` strengths aligned with ``relation_names``.
    relation_names:
        Relations that carried links in the fit (gamma order).
    relation_types:
        ``{relation: (source_type, target_type)}`` for *every* relation
        declared in the training schema -- fold-in validates new links
        against these.
    node_ids:
        All fitted node ids in index order (JSON scalars).
    node_types:
        Object type of each node, aligned with ``node_ids``.
    object_types:
        All object type names declared in the training schema.
    attribute_params:
        Learned per-attribute component parameters, in the shape
        :class:`~repro.core.result.GenClusResult` uses.
    history:
        The fit's :class:`~repro.core.diagnostics.RunHistory`.
    edges:
        Schema v2 refit payload: ``{relation: (sources, targets,
        weights)}`` index arrays of the training links, or ``None``
        for serve-only artifacts (schema v1 loads).
    observations:
        Schema v2 refit payload: per fitted attribute, the raw
        observation table in compiled form (text: ``node_indices`` +
        counts CSR pieces; numeric: ``node_indices``/``values``/
        ``owners``), or ``None`` for serve-only artifacts.
    """

    theta: np.ndarray
    gamma: np.ndarray
    relation_names: tuple[str, ...]
    relation_types: dict[str, tuple[str, str]]
    node_ids: tuple[object, ...]
    node_types: tuple[str, ...]
    object_types: tuple[str, ...]
    attribute_params: dict[str, dict]
    history: RunHistory
    edges: (
        Mapping[str, tuple[np.ndarray, np.ndarray, np.ndarray]] | None
    ) = None
    observations: Mapping[str, dict[str, Any]] | None = None
    source_schema_version: int = SCHEMA_VERSION
    """Schema version of the bundle this artifact was read from
    (:data:`SCHEMA_VERSION` for artifacts frozen in memory)."""
    mapped: bool = False
    """Whether the arrays are lazily-paged read-only memory maps
    (``load_artifact(..., mmap=True)`` on a v3 bundle directory)."""
    integrity: ArtifactIntegrity | None = field(
        default=None, repr=False, compare=False
    )
    """Lazy checksum guard for mapped bundles (``None`` for eager
    loads, unchecksummed bundles, and in-memory artifacts)."""

    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return int(self.theta.shape[0])

    @property
    def refit_capable(self) -> bool:
        """Whether the artifact embeds the training data needed to
        warm-start a full refit (schema v2 with payload)."""
        return self.edges is not None and self.observations is not None

    @property
    def n_clusters(self) -> int:
        return int(self.theta.shape[1])

    def node_index(self) -> dict[object, int]:
        """``{node id: theta row}`` (a fresh dict)."""
        return {node: i for i, node in enumerate(self.node_ids)}

    # ------------------------------------------------------------------
    @classmethod
    def from_result(
        cls,
        result: GenClusResult,
        include_training_data: bool = True,
    ) -> ModelArtifact:
        """Freeze a fit into an artifact (arrays are copied).

        When ``include_training_data`` is true (the default) and the
        result's network still carries its links and the fitted
        attribute tables, they are embedded as the schema-v2 refit
        payload.  Results reloaded from serve-only (v1) bundles lack
        that data and freeze serve-only again.
        """
        network = result.network
        for node in network.node_ids:
            if not isinstance(node, _SCALARS):
                raise SerializationError(
                    f"node id {node!r} is not a JSON scalar; only "
                    f"str/int/float/bool ids can be persisted"
                )
        relation_types = {
            rel.name: (rel.source, rel.target)
            for rel in network.schema.relations
        }
        edges: dict[str, tuple[np.ndarray, np.ndarray, np.ndarray]] | None
        observations: dict[str, dict[str, Any]] | None
        edges = observations = None
        has_training_data = training_data_available(
            network, tuple(result.attribute_params), result.relation_names
        )
        if include_training_data and has_training_data:
            edges = {}
            for name in result.relation_names:
                sources, targets, weights = network.edge_arrays(name)
                edges[name] = (
                    np.asarray(sources, dtype=np.int64),
                    np.asarray(targets, dtype=np.int64),
                    np.asarray(weights, dtype=np.float64),
                )
            node_index = network.node_index
            observations = {}
            for name in result.attribute_params:
                attribute = network.attribute(name)
                if isinstance(attribute, TextAttribute):
                    compiled = attribute.compile(node_index)
                    counts = compiled.counts.tocsr()
                    observations[name] = {
                        "kind": "categorical",
                        "node_indices": compiled.node_indices.copy(),
                        "data": counts.data.copy(),
                        "indices": counts.indices.copy(),
                        "indptr": counts.indptr.copy(),
                    }
                else:
                    compiled = attribute.compile(node_index)
                    observations[name] = {
                        "kind": "gaussian",
                        "node_indices": compiled.node_indices.copy(),
                        "values": compiled.values.copy(),
                        "owners": compiled.owners.copy(),
                    }
        return cls(
            theta=np.asarray(result.theta, dtype=np.float64).copy(),
            gamma=np.asarray(result.gamma, dtype=np.float64).copy(),
            relation_names=tuple(result.relation_names),
            relation_types=relation_types,
            node_ids=tuple(network.node_ids),
            node_types=tuple(
                network.type_at(i) for i in range(network.num_nodes)
            ),
            object_types=tuple(
                t.name for t in network.schema.object_types
            ),
            attribute_params=_copy_params(result.attribute_params),
            history=result.history,
            edges=edges,
            observations=observations,
        )

    def to_result(self) -> GenClusResult:
        """Rebuild a :class:`GenClusResult`.

        Refit-capable artifacts reconstruct the **full** training
        network -- nodes, links, and attribute tables -- so the result
        can seed a new :class:`~repro.core.state.ModelState`; serve-only
        (v1) artifacts reconstruct nodes and schema without links, as
        before.
        """
        # rebuilding a result materializes every array; settle any
        # deferred checksums first (mapped bundles)
        if self.integrity is not None:
            self.integrity.verify_pending()
        return GenClusResult(
            theta=self.theta.copy(),
            gamma=self.gamma.copy(),
            relation_names=self.relation_names,
            attribute_params=_copy_params(self.attribute_params),
            history=self.history,
            network=self._build_network(include_training_data=True),
        )

    def to_state(self):
        """Rebuild lifecycle state: refit-capable for schema-v2 bundles
        with embedded training data, serve-only otherwise (v1).

        The training payload is decoded **lazily**: serving starts on
        the ``O(nK)`` arrays alone, and the per-edge/per-observation
        reconstruction runs only when the state's refit path
        (``to_problem`` / ``promote``) first needs it.

        Mapped artifacts (``load_artifact(..., mmap=True)``) go one
        step further: the state's base theta **is the read-only map**
        (no copy at all -- the OS pages rows in as queries touch
        them), and the first mutating path that must copy the base
        rows (theta growth on ``extend``, eviction compaction, the
        promote refit) verifies theta's deferred checksum and
        materializes a private writable buffer.  The map itself is
        never written through.
        """
        from repro.core.state import ModelState

        integrity = self.integrity
        return ModelState(
            network=self._build_network(include_training_data=False),
            matrices=None,
            theta=self.theta if self.mapped else self.theta.copy(),
            gamma=self.gamma.copy(),
            relation_names=self.relation_names,
            attribute_names=tuple(self.attribute_params),
            attribute_params=_copy_params(self.attribute_params),
            refit_capable=self.refit_capable,
            hydrator=(
                self._hydrated_views if self.refit_capable else None
            ),
            copy_theta=not self.mapped,
            on_materialize=(
                (lambda: integrity.verify("theta"))
                if integrity is not None
                else None
            ),
        )

    def _build_network(
        self, include_training_data: bool
    ) -> HeterogeneousNetwork:
        schema = NetworkSchema()
        for name in self.object_types:
            schema.add_object_type(name)
        for name, (source, target) in self.relation_types.items():
            schema.add_relation(name, source, target)
        network = HeterogeneousNetwork(schema)
        network.add_node_columns(self.node_ids, self.node_types)
        if include_training_data and self.refit_capable:
            self._restore_training_data(network)
        return network

    def _hydrated_views(self):
        """The deferred refit payload: full training network plus link
        views built straight from the stored edge arrays (vectorized
        CSR construction in the fit's relation order)."""
        from repro.hin.views import RelationMatrices

        # hydration reads the whole training payload: settle the
        # deferred edge/observation checksums of a mapped bundle first
        if self.integrity is not None:
            self.integrity.verify_prefix("edges/", "obs/")
        network = self._build_network(include_training_data=True)
        n = self.num_nodes
        mats = []
        for name in self.relation_names:
            sources, targets, weights = self.edges[name]
            mats.append(
                sparse.csr_matrix(
                    (weights, (sources, targets)), shape=(n, n)
                )
            )
        matrices = RelationMatrices(
            relation_names=self.relation_names,
            matrices=tuple(mats),
            num_nodes=n,
        )
        return network, matrices

    def _restore_training_data(
        self, network: HeterogeneousNetwork
    ) -> None:
        """Re-add embedded edges and observation tables to a rebuilt
        node-only network (ids resolved through ``node_ids`` order)."""
        ids = self.node_ids
        for name, (sources, targets, weights) in self.edges.items():
            for src, dst, weight in zip(sources, targets, weights):
                network.add_edge(
                    ids[int(src)], ids[int(dst)], name, float(weight)
                )
        for name, payload in self.observations.items():
            if payload["kind"] == "categorical":
                vocabulary = self.attribute_params[name]["vocabulary"]
                attribute = TextAttribute(
                    name, frozen_vocabulary=vocabulary
                )
                counts = sparse.csr_matrix(
                    (
                        payload["data"],
                        payload["indices"],
                        payload["indptr"],
                    ),
                    shape=(
                        payload["node_indices"].shape[0],
                        len(vocabulary),
                    ),
                )
                for row, node_idx in enumerate(payload["node_indices"]):
                    start, stop = counts.indptr[row], counts.indptr[row + 1]
                    attribute.add_counts(
                        ids[int(node_idx)],
                        {
                            vocabulary[int(col)]: float(val)
                            for col, val in zip(
                                counts.indices[start:stop],
                                counts.data[start:stop],
                            )
                        },
                    )
            else:
                attribute = NumericAttribute(name)
                node_indices = payload["node_indices"]
                values = payload["values"]
                owners = payload["owners"]
                for value, owner in zip(values, owners):
                    attribute.add_value(
                        ids[int(node_indices[int(owner)])], float(value)
                    )
            network.add_attribute(attribute)

    # ------------------------------------------------------------------
    def save(
        self,
        path: str | Path,
        schema_version: int = SCHEMA_VERSION,
        compress: bool = True,
    ) -> Path:
        """Write the artifact bundle; returns path.

        Schema v3 (the default) writes a **bundle directory** of raw
        ``.npy`` files ready for memory-mapped loading; pass
        ``schema_version=2`` (or 1) for the legacy single-file
        ``.npz``, where ``compress=False`` trades bundle size for
        save/load speed.

        Crash-safe: both layouts are written to a same-directory temp
        target and swapped into place with ``os.replace``, so a crash
        mid-save can never leave a truncated bundle at ``path``.
        """
        return save_artifact(
            self, path, schema_version=schema_version, compress=compress
        )

    @classmethod
    def load(
        cls, path: str | Path, verify_checksums: bool = True, **kwargs
    ) -> ModelArtifact:
        """Read an artifact written by :meth:`save` (checksums
        verified by default; see :func:`load_artifact`)."""
        return load_artifact(
            path, verify_checksums=verify_checksums, **kwargs
        )

    def summary(self) -> str:
        """Readable overview of the persisted model."""
        capability = (
            "refit-capable (training data embedded)"
            if self.refit_capable
            else "serve-only"
        )
        lines = [
            f"GenClus artifact (schema v{self.source_schema_version}): "
            f"{self.num_nodes} nodes, K={self.n_clusters}, {capability}",
            "object types: " + ", ".join(self.object_types),
            "link-type strengths:",
        ]
        for name, gamma in sorted(
            zip(self.relation_names, self.gamma), key=lambda kv: -kv[1]
        ):
            lines.append(f"  {name:<24} {float(gamma):>10.4f}")
        for name, params in self.attribute_params.items():
            if params["kind"] == "categorical":
                detail = f"vocabulary of {len(params['vocabulary'])}"
            else:
                detail = f"{params['means'].shape[0]} components"
            lines.append(f"attribute {name!r}: {params['kind']}, {detail}")
        lines.append(
            f"outer iterations recorded: {len(self.history)}"
        )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# on-disk format
# ----------------------------------------------------------------------
def save_artifact(
    artifact: ModelArtifact,
    path: str | Path,
    schema_version: int = SCHEMA_VERSION,
    compress: bool = True,
) -> Path:
    """Serialize the artifact bundle.

    Schema v3 (the default) writes a **bundle directory**: one raw
    ``.npy`` file per array under ``arrays/`` plus the JSON manifest
    as ``manifest.json`` -- the layout :func:`load_artifact` can
    memory-map.  Schemas 1/2 write the legacy single-file ``.npz``
    (``compress`` selects ``np.savez_compressed`` vs ``np.savez``);
    ``schema_version=1`` additionally drops the training-data payload
    for interoperability with the oldest readers.  The manifest's
    ``save_stats`` entry records the round trip: array bytes written,
    wall seconds, and whether compression was applied.
    """
    if schema_version not in SUPPORTED_VERSIONS:
        raise SerializationError(
            f"cannot write schema version {schema_version!r} "
            f"(supported: {SUPPORTED_VERSIONS})"
        )
    path = Path(path)
    started = time.perf_counter()
    # re-saving a mapped artifact reads every array end to end anyway:
    # settle any deferred checksums first so corruption cannot be
    # laundered into a freshly-checksummed bundle
    if artifact.integrity is not None:
        artifact.integrity.verify_pending()
    arrays: dict[str, np.ndarray] = {
        "theta": np.asarray(artifact.theta, dtype=np.float64),
        "gamma": np.asarray(artifact.gamma, dtype=np.float64),
    }
    attributes: list[dict[str, Any]] = []
    for name, params in artifact.attribute_params.items():
        entry: dict[str, Any] = {"name": name, "kind": params["kind"]}
        if params["kind"] == "categorical":
            arrays[f"attr/{name}/beta"] = np.asarray(
                params["beta"], dtype=np.float64
            )
            entry["vocabulary"] = list(params["vocabulary"])
        elif params["kind"] == "gaussian":
            arrays[f"attr/{name}/means"] = np.asarray(
                params["means"], dtype=np.float64
            )
            arrays[f"attr/{name}/variances"] = np.asarray(
                params["variances"], dtype=np.float64
            )
        else:  # pragma: no cover - defensive
            raise SerializationError(
                f"attribute {name!r} has unknown kind {params['kind']!r}"
            )
        attributes.append(entry)

    records = artifact.history.records
    arrays["history/gamma"] = (
        np.stack([r.gamma for r in records])
        if records
        else np.zeros((0, len(artifact.relation_names)))
    )
    arrays["history/scalars"] = np.asarray(
        [
            [
                float(r.outer_iteration),
                r.g1_value,
                r.g2_value,
                float(r.em_iterations),
                float(r.newton_iterations),
                r.em_seconds,
                r.newton_seconds,
            ]
            for r in records
        ],
        dtype=np.float64,
    ).reshape(len(records), 7)

    embed_payload = (
        schema_version >= 2 and artifact.refit_capable
    )
    if embed_payload:
        for name, (sources, targets, weights) in artifact.edges.items():
            arrays[f"edges/{name}/sources"] = np.asarray(
                sources, dtype=np.int64
            )
            arrays[f"edges/{name}/targets"] = np.asarray(
                targets, dtype=np.int64
            )
            arrays[f"edges/{name}/weights"] = np.asarray(
                weights, dtype=np.float64
            )
        for name, payload in artifact.observations.items():
            if payload["kind"] == "categorical":
                keys = ("node_indices", "data", "indices", "indptr")
            else:
                keys = ("node_indices", "values", "owners")
            for key in keys:
                arrays[f"obs/{name}/{key}"] = np.asarray(payload[key])

    # v3 keeps the node table out of the JSON manifest: at ~100k nodes
    # a [{"id": ..., "type": ...}] list dominates the manifest parse on
    # every cold start, while two flat arrays (unicode ids + type codes
    # into a small table) decode in microseconds.  Non-string ids (JSON
    # scalars are allowed) fall back to the manifest list.
    node_columns = schema_version >= 3 and all(
        isinstance(node, str) for node in artifact.node_ids
    )
    if node_columns:
        type_table = sorted(set(artifact.node_types))
        code_of = {name: code for code, name in enumerate(type_table)}
        arrays["nodes/ids"] = np.asarray(artifact.node_ids)
        arrays["nodes/type_codes"] = np.asarray(
            [code_of[name] for name in artifact.node_types],
            dtype=np.uint16,
        )

    manifest = {
        "format": FORMAT,
        "schema_version": schema_version,
        "n_clusters": artifact.n_clusters,
        "relation_names": list(artifact.relation_names),
        "relation_types": {
            name: list(pair)
            for name, pair in artifact.relation_types.items()
        },
        "object_types": list(artifact.object_types),
        "attributes": attributes,
        "arrays": sorted(arrays),
        # per-array CRC32s over the raw buffer bytes; verified by
        # load_artifact (the manifest entry cannot checksum itself)
        "checksums": {
            name: zlib.crc32(np.ascontiguousarray(value).tobytes())
            for name, value in arrays.items()
        },
    }
    if node_columns:
        manifest["node_type_table"] = type_table
    else:
        manifest["nodes"] = [
            {"id": node, "type": typ}
            for node, typ in zip(artifact.node_ids, artifact.node_types)
        ]
    if schema_version >= 2:
        manifest["refit_capable"] = embed_payload
    array_bytes = int(
        sum(value.nbytes for value in arrays.values())
    )
    if schema_version >= 3:
        return _save_v3(path, manifest, arrays, array_bytes, started)

    manifest["save_stats"] = {
        "array_bytes": array_bytes,
        "seconds": round(time.perf_counter() - started, 6),
        "compressed": bool(compress),
    }
    arrays["manifest"] = np.frombuffer(
        json.dumps(manifest).encode("utf-8"), dtype=np.uint8
    )
    # crash-safe write: same-directory temp file, then an atomic
    # rename -- a crash mid-save leaves the old bundle (or nothing)
    # at the target path, never a torn one
    scratch = path.with_name(path.name + ".tmp")
    writer = np.savez_compressed if compress else np.savez
    try:
        with scratch.open("wb") as handle:
            writer(handle, **arrays)
        _replace_bundle(scratch, path)
    except BaseException:
        scratch.unlink(missing_ok=True)
        raise
    return path


def _save_v3(
    path: Path,
    manifest: dict[str, Any],
    arrays: dict[str, np.ndarray],
    array_bytes: int,
    started: float,
) -> Path:
    """Write the v3 bundle directory: ``arrays/NNNN.npy`` + manifest.

    Array files are named by index, not by array key -- keys like
    ``attr/my text/beta`` carry separators and arbitrary characters,
    so the manifest's ``array_files`` mapping is the only source of
    truth for which file holds which array.  The manifest is written
    **last** (a bundle without it is detectably torn), and the whole
    directory is assembled under a same-directory temp name and
    swapped into place, so a crash mid-save leaves the old bundle (or
    nothing) at ``path``, never a partial one.
    """
    array_files = {
        name: f"arrays/{index:04d}.npy"
        for index, name in enumerate(sorted(arrays))
    }
    manifest["array_files"] = array_files
    scratch = path.with_name(path.name + f".tmp-{os.getpid()}")
    if scratch.exists():  # pragma: no cover - stale crash debris
        shutil.rmtree(scratch)
    try:
        # no parents=True: a missing target directory is the caller's
        # error, exactly as the npz writer treats it
        scratch.mkdir()
        (scratch / "arrays").mkdir()
        for name, relpath in array_files.items():
            np.save(scratch / relpath, arrays[name], allow_pickle=False)
        manifest["save_stats"] = {
            "array_bytes": array_bytes,
            "seconds": round(time.perf_counter() - started, 6),
            "compressed": False,
        }
        manifest_path = scratch / MANIFEST_NAME
        manifest_path.write_text(
            json.dumps(manifest, indent=2), encoding="utf-8"
        )
        _replace_bundle(scratch, path)
    except BaseException:
        shutil.rmtree(scratch, ignore_errors=True)
        raise
    return path


def _replace_bundle(scratch: Path, path: Path) -> None:
    """Swap ``scratch`` into place at ``path``, whatever either is.

    ``os.replace`` cannot rename over a non-empty directory (and a
    directory cannot replace a file), so an existing bundle is first
    renamed aside to ``<name>.old`` and removed only after the swap
    succeeds; on failure it is restored.
    """
    backup: Path | None = None
    if path.exists() and (path.is_dir() or scratch.is_dir()):
        backup = path.with_name(path.name + ".old")
        if backup.is_dir():
            shutil.rmtree(backup)
        else:
            backup.unlink(missing_ok=True)
        os.replace(path, backup)
    try:
        os.replace(scratch, path)
    except BaseException:
        if backup is not None:
            os.replace(backup, path)
        raise
    if backup is not None:
        if backup.is_dir():
            shutil.rmtree(backup)
        else:
            backup.unlink()


def load_artifact(
    path: str | Path,
    verify_checksums: bool = True,
    mmap: bool = False,
    faults=None,
) -> ModelArtifact:
    """Deserialize an artifact bundle, checking format and version.

    ``mmap=True`` on a schema-v3 bundle directory opens every array
    with ``np.load(..., mmap_mode="r")``: the returned artifact holds
    lazily-paged read-only views, cold start touches only the pages
    the first queries read, and the big arrays' checksums are deferred
    to an :class:`ArtifactIntegrity` guard verified on first
    materialization.  On v1/v2 ``.npz`` bundles ``mmap`` silently
    falls back to the eager load (compressed zip members cannot be
    paged).

    Integrity: each array decodes individually, so a truncated or
    corrupt bundle fails with a
    :class:`~repro.exceptions.SerializationError` naming the path and
    the failing array (never a raw ``zipfile``/``numpy`` traceback);
    with ``verify_checksums`` (the default) every array is then
    verified against the per-array CRC32s the manifest records --
    catching even single-bit corruption that still decodes (deferred
    for the mapped big arrays as above).  Bundles written before
    checksums existed load unverified.  ``faults`` optionally
    traverses the ``artifact.load`` site.
    """
    path = Path(path)
    injector = resolve_faults(faults)
    if injector is not None:
        injector.traverse("artifact.load", path=str(path))
    if path.is_dir():
        return _load_v3(path, verify_checksums, mmap)
    try:
        bundle = np.load(path, allow_pickle=False)
    except (OSError, ValueError, zipfile.BadZipFile) as exc:
        raise SerializationError(
            f"{path} is not a readable artifact bundle: {exc}"
        ) from exc
    payload: dict[str, np.ndarray] = {}
    current: str | None = None
    try:
        with bundle:
            for current in bundle.files:
                payload[current] = bundle[current]
    except (
        OSError,
        EOFError,
        ValueError,
        zlib.error,
        zipfile.BadZipFile,
    ) as exc:
        if current is None:  # pragma: no cover - defensive
            raise SerializationError(
                f"{path} is not a readable artifact bundle: {exc}"
            ) from exc
        raise SerializationError(
            f"{path} is corrupt: array {current!r} failed to decode "
            f"({exc})"
        ) from exc
    if "manifest" not in payload:
        raise SerializationError(
            f"{path} has no manifest entry; not a serving artifact"
        )
    try:
        manifest = json.loads(bytes(payload["manifest"]).decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SerializationError(
            f"{path} carries a malformed manifest: {exc}"
        ) from exc
    _check_manifest(path, manifest)
    try:
        artifact = _decode(manifest, payload)
    except (KeyError, TypeError, IndexError) as exc:
        raise SerializationError(
            f"malformed artifact payload in {path}: {exc}"
        ) from exc
    if verify_checksums:
        _verify_checksums(path, manifest, payload)
    return artifact


def _load_v3(
    path: Path, verify_checksums: bool, mmap: bool
) -> ModelArtifact:
    """Read a schema-v3 bundle directory (``manifest.json`` +
    ``arrays/*.npy``), optionally memory-mapped.

    Array files are resolved strictly through the manifest's
    ``array_files`` mapping, and every resolved path must stay inside
    the bundle directory -- a tampered manifest cannot read files
    elsewhere on disk.  Under ``mmap=True`` the small arrays verify
    their checksums eagerly as usual while the big ones
    (:func:`_lazy_array_names`) are handed to an
    :class:`ArtifactIntegrity` guard for first-materialization
    verification.
    """
    manifest_path = path / MANIFEST_NAME
    try:
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise SerializationError(
            f"{path} has no readable {MANIFEST_NAME}; "
            f"not a serving artifact bundle: {exc}"
        ) from exc
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SerializationError(
            f"{path} carries a malformed manifest: {exc}"
        ) from exc
    _check_manifest(path, manifest)
    array_files = manifest.get("array_files")
    if not isinstance(array_files, dict):
        raise SerializationError(
            f"{path} manifest declares no array_files mapping; "
            f"the bundle directory is malformed"
        )
    names = manifest.get("arrays", ())
    defer = _deferred_open_names(names) if mmap else set()
    payload: dict[str, np.ndarray] = (
        _LazyPayload(path) if mmap else {}
    )
    for name in names:
        relpath = array_files.get(name)
        if relpath is None:
            continue  # absence is _decode's "missing arrays" error
        member = _guarded_member(path, name, relpath)
        if name in defer:
            payload.deferred[name] = member
            continue
        payload[name] = _open_member(path, name, member, mmap)
    lazy = _lazy_array_names(names) if mmap else set()
    try:
        artifact = _decode(manifest, payload)
    except (KeyError, TypeError, IndexError) as exc:
        raise SerializationError(
            f"malformed artifact payload in {path}: {exc}"
        ) from exc
    integrity: ArtifactIntegrity | None = None
    if verify_checksums:
        _verify_checksums(path, manifest, payload, skip=lazy)
        checksums = manifest.get("checksums") or {}
        deferred = {name for name in lazy if name in checksums}
        if deferred:
            integrity = ArtifactIntegrity(
                path, checksums, payload, deferred
            )
    return replace(artifact, mapped=mmap, integrity=integrity)


def _guarded_member(path: Path, name: str, relpath: object) -> Path:
    """Resolve an ``array_files`` entry, rejecting traversal by string
    validation alone -- no filesystem access (``Path.resolve`` per
    member is measurable cold-start latency), no absolute paths, no
    ``..``/empty segments, no Windows drive or separator tricks."""
    parts = relpath.split("/") if isinstance(relpath, str) else None
    if (
        not parts
        or relpath[:1] in ("/", "\\")
        or any(part in ("", ".", "..") for part in parts)
        or any("\\" in part or ":" in part for part in parts)
    ):
        raise SerializationError(
            f"{path} manifest maps array {name!r} to {relpath!r}, "
            f"which escapes the bundle directory; refusing to load"
        )
    return path / relpath


def _open_member(
    bundle: Path, name: str, member: Path, mmap: bool
) -> np.ndarray:
    """Open one ``.npy`` member, naming the bundle and array on error."""
    try:
        return np.load(
            member,
            mmap_mode="r" if mmap else None,
            allow_pickle=False,
        )
    except (OSError, EOFError, ValueError) as exc:
        raise SerializationError(
            f"{bundle} is corrupt: array {name!r} failed to decode "
            f"({exc})"
        ) from exc


def _check_manifest(path: Path, manifest: dict[str, Any]) -> None:
    """Reject wrong-format and unsupported-version manifests."""
    if manifest.get("format") != FORMAT:
        raise SerializationError(
            f"unsupported format marker {manifest.get('format')!r}; "
            f"expected {FORMAT!r}"
        )
    version = manifest.get("schema_version")
    if version not in SUPPORTED_VERSIONS:
        raise SerializationError(
            f"artifact schema version {version!r} is not supported by "
            f"this library (supported: {SUPPORTED_VERSIONS}); "
            f"re-export the model or upgrade the library"
        )


def _verify_checksums(
    path: Path,
    manifest: dict[str, Any],
    payload: dict[str, np.ndarray],
    skip: set[str] = frozenset(),
) -> None:
    """Compare each array against the manifest's recorded CRC32.

    Structural validation (:func:`_decode`) has already passed, so a
    mismatch here means value corruption that still decodes -- flipped
    bits, a swapped array, tampering.  Bundles without a ``checksums``
    manifest key (written before checksums existed) pass unverified.
    ``skip`` holds the lazily-verified arrays of a mapped load (they
    belong to an :class:`ArtifactIntegrity` guard instead).
    """
    recorded = manifest.get("checksums")
    if not recorded:
        return
    for name, expected in recorded.items():
        if name in skip:
            continue
        array = payload.get(name)
        if array is None:
            continue  # absence is _decode's "missing arrays" error
        actual = zlib.crc32(np.ascontiguousarray(array).tobytes())
        if actual != int(expected):
            raise SerializationError(
                f"{path}: checksum mismatch for array {name!r} "
                f"(manifest records crc32={expected}, got {actual}); "
                f"the bundle is corrupt or was modified after save. "
                f"Pass verify_checksums=False to load anyway."
            )


def _decode(
    manifest: dict[str, Any], payload: dict[str, np.ndarray]
) -> ModelArtifact:
    missing = [key for key in manifest["arrays"] if key not in payload]
    if missing:
        raise SerializationError(
            f"artifact is missing declared arrays: {missing}"
        )
    theta = np.asarray(payload["theta"], dtype=np.float64)
    gamma = np.asarray(payload["gamma"], dtype=np.float64)
    relation_names = tuple(manifest["relation_names"])
    if theta.ndim != 2:
        raise SerializationError(
            f"theta must be 2-D, got shape {theta.shape}"
        )
    if theta.shape[1] != int(manifest["n_clusters"]):
        raise SerializationError(
            f"theta has {theta.shape[1]} columns but the manifest "
            f"declares n_clusters={manifest['n_clusters']}"
        )
    nodes = manifest.get("nodes")
    if nodes is not None:
        node_ids = tuple(entry["id"] for entry in nodes)
        node_types = tuple(entry["type"] for entry in nodes)
    else:
        # v3 node columns: unicode id array + type codes into the
        # manifest's small type table
        type_table = manifest["node_type_table"]
        node_ids = tuple(np.asarray(payload["nodes/ids"]).tolist())
        node_types = tuple(
            type_table[code]
            for code in payload["nodes/type_codes"].tolist()
        )
    if theta.shape[0] != len(node_ids):
        raise SerializationError(
            f"theta has {theta.shape[0]} rows but the manifest lists "
            f"{len(node_ids)} nodes"
        )
    if gamma.shape != (len(relation_names),):
        raise SerializationError(
            f"gamma has shape {gamma.shape} but the manifest lists "
            f"{len(relation_names)} relations"
        )

    attribute_params: dict[str, dict] = {}
    for entry in manifest["attributes"]:
        name = entry["name"]
        if entry["kind"] == "categorical":
            attribute_params[name] = {
                "kind": "categorical",
                "beta": np.asarray(
                    payload[f"attr/{name}/beta"], dtype=np.float64
                ),
                "vocabulary": tuple(entry["vocabulary"]),
            }
        elif entry["kind"] == "gaussian":
            attribute_params[name] = {
                "kind": "gaussian",
                "means": np.asarray(
                    payload[f"attr/{name}/means"], dtype=np.float64
                ),
                "variances": np.asarray(
                    payload[f"attr/{name}/variances"], dtype=np.float64
                ),
            }
        else:
            raise SerializationError(
                f"unknown attribute kind {entry['kind']!r}"
            )

    history = RunHistory(relation_names=relation_names)
    gammas = payload["history/gamma"]
    scalars = payload["history/scalars"]
    for row, gamma_row in zip(scalars, gammas):
        history.append(
            IterationRecord(
                outer_iteration=int(row[0]),
                gamma=np.asarray(gamma_row, dtype=np.float64),
                g1_value=float(row[1]),
                g2_value=float(row[2]),
                em_iterations=int(row[3]),
                newton_iterations=int(row[4]),
                em_seconds=float(row[5]),
                newton_seconds=float(row[6]),
            )
        )

    edges = observations = None
    if manifest.get("refit_capable"):
        attribute_kinds = {
            entry["name"]: entry["kind"]
            for entry in manifest["attributes"]
        }

        def _edge_triple(name):
            return (
                np.asarray(
                    payload[f"edges/{name}/sources"], dtype=np.int64
                ),
                np.asarray(
                    payload[f"edges/{name}/targets"], dtype=np.int64
                ),
                np.asarray(
                    payload[f"edges/{name}/weights"], dtype=np.float64
                ),
            )

        def _observation_table(name):
            if attribute_kinds[name] == "categorical":
                return {
                    "kind": "categorical",
                    "node_indices": np.asarray(
                        payload[f"obs/{name}/node_indices"],
                        dtype=np.int64,
                    ),
                    "data": np.asarray(
                        payload[f"obs/{name}/data"], dtype=np.float64
                    ),
                    "indices": np.asarray(
                        payload[f"obs/{name}/indices"], dtype=np.int64
                    ),
                    "indptr": np.asarray(
                        payload[f"obs/{name}/indptr"], dtype=np.int64
                    ),
                }
            return {
                "kind": "gaussian",
                "node_indices": np.asarray(
                    payload[f"obs/{name}/node_indices"],
                    dtype=np.int64,
                ),
                "values": np.asarray(
                    payload[f"obs/{name}/values"], dtype=np.float64
                ),
                "owners": np.asarray(
                    payload[f"obs/{name}/owners"], dtype=np.int64
                ),
            }

        if isinstance(payload, _LazyPayload) and payload.deferred:
            # mapped bundle: keep the training payload's files closed
            # until refit hydration first reads them
            edges = _LazyTable(relation_names, _edge_triple)
            observations = _LazyTable(
                tuple(attribute_kinds), _observation_table
            )
        else:
            edges = {
                name: _edge_triple(name) for name in relation_names
            }
            observations = {
                name: _observation_table(name)
                for name in attribute_kinds
            }

    return ModelArtifact(
        theta=theta,
        gamma=gamma,
        relation_names=relation_names,
        relation_types={
            name: (pair[0], pair[1])
            for name, pair in manifest["relation_types"].items()
        },
        node_ids=node_ids,
        node_types=node_types,
        object_types=tuple(manifest["object_types"]),
        attribute_params=attribute_params,
        history=history,
        edges=edges,
        observations=observations,
        source_schema_version=int(manifest["schema_version"]),
    )


def _copy_params(params: dict[str, dict]) -> dict[str, dict]:
    """Deep-enough copy of the attribute parameter dict (arrays copied)."""
    copied: dict[str, dict] = {}
    for name, entry in params.items():
        fresh = dict(entry)
        for key in ("beta", "means", "variances"):
            if key in fresh:
                fresh[key] = np.asarray(
                    fresh[key], dtype=np.float64
                ).copy()
        copied[name] = fresh
    return copied
