"""Versioned persistence of a fitted GenClus model.

A fitted model is frozen into a :class:`ModelArtifact` -- everything the
serving layer needs to answer membership queries without refitting:

* the ``(n, K)`` membership matrix Theta and the strength vector gamma,
* the relation list (fixing gamma's order) and the relation type
  declarations (for validating fold-in links),
* the node id / object-type map (fixing Theta's row order),
* the learned attribute component parameters (beta / mu, sigma^2) with
  their vocabularies,
* the per-outer-iteration diagnostics history (scalar fields only; the
  variable-length inner-EM objective traces are not persisted).

On disk an artifact is a **single ``.npz`` bundle**: every numeric array
is stored under a registry key, and one ``manifest`` entry carries a
UTF-8 JSON document with the schema version, the structural metadata, and
the array registry.  ``np.load`` never needs ``allow_pickle`` -- the
format is plain arrays plus JSON, so loading untrusted artifacts cannot
execute code.

Versioning: ``SCHEMA_VERSION`` is bumped whenever the layout changes;
:func:`load_artifact` rejects bundles whose major version it does not
understand with a :class:`~repro.exceptions.SerializationError` naming
both versions.

**Schema v2** additionally embeds the *training data* -- the link lists
of every fitted relation and the raw attribute observation tables --
whenever the saved result still carries them (any fresh fit does).
That makes a reloaded model **refit-capable**: the network rebuilt by
:meth:`ModelArtifact.to_result` has its edges and observations back,
and :meth:`ModelArtifact.to_state` yields a
:class:`~repro.core.state.ModelState` that can warm-start a full new
``GenClus`` fit (the lifecycle loop: fit -> save -> load -> extend ->
promote).  The bundle grows from ``O(nK)`` to
``O(nK + |E| + |obs|)``; pass ``schema_version=1`` to
:func:`save_artifact` for the old serve-only layout.  **Schema v1
bundles still load** -- they reconstruct a serve-only model (nodes and
schema, no links), exactly as before.
"""

from __future__ import annotations

import json
import os
import zipfile
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Any

import numpy as np
from scipy import sparse

from repro.core.diagnostics import IterationRecord, RunHistory
from repro.core.result import GenClusResult
from repro.core.state import training_data_available
from repro.exceptions import SerializationError
from repro.faults import resolve_faults
from repro.hin.attributes import (
    NumericAttribute,
    TextAttribute,
)
from repro.hin.network import HeterogeneousNetwork
from repro.hin.schema import NetworkSchema

FORMAT = "repro.serving/artifact"
SCHEMA_VERSION = 2
SUPPORTED_VERSIONS = (1, 2)

_SCALARS = (str, int, float, bool)


@dataclass(frozen=True)
class ModelArtifact:
    """A fitted model frozen for persistence and serving.

    Attributes
    ----------
    theta:
        ``(n, K)`` membership matrix, rows ordered like ``node_ids``.
    gamma:
        ``(R,)`` strengths aligned with ``relation_names``.
    relation_names:
        Relations that carried links in the fit (gamma order).
    relation_types:
        ``{relation: (source_type, target_type)}`` for *every* relation
        declared in the training schema -- fold-in validates new links
        against these.
    node_ids:
        All fitted node ids in index order (JSON scalars).
    node_types:
        Object type of each node, aligned with ``node_ids``.
    object_types:
        All object type names declared in the training schema.
    attribute_params:
        Learned per-attribute component parameters, in the shape
        :class:`~repro.core.result.GenClusResult` uses.
    history:
        The fit's :class:`~repro.core.diagnostics.RunHistory`.
    edges:
        Schema v2 refit payload: ``{relation: (sources, targets,
        weights)}`` index arrays of the training links, or ``None``
        for serve-only artifacts (schema v1 loads).
    observations:
        Schema v2 refit payload: per fitted attribute, the raw
        observation table in compiled form (text: ``node_indices`` +
        counts CSR pieces; numeric: ``node_indices``/``values``/
        ``owners``), or ``None`` for serve-only artifacts.
    """

    theta: np.ndarray
    gamma: np.ndarray
    relation_names: tuple[str, ...]
    relation_types: dict[str, tuple[str, str]]
    node_ids: tuple[object, ...]
    node_types: tuple[str, ...]
    object_types: tuple[str, ...]
    attribute_params: dict[str, dict]
    history: RunHistory
    edges: dict[str, tuple[np.ndarray, np.ndarray, np.ndarray]] | None = (
        None
    )
    observations: dict[str, dict[str, Any]] | None = None
    source_schema_version: int = SCHEMA_VERSION
    """Schema version of the bundle this artifact was read from
    (:data:`SCHEMA_VERSION` for artifacts frozen in memory)."""

    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return int(self.theta.shape[0])

    @property
    def refit_capable(self) -> bool:
        """Whether the artifact embeds the training data needed to
        warm-start a full refit (schema v2 with payload)."""
        return self.edges is not None and self.observations is not None

    @property
    def n_clusters(self) -> int:
        return int(self.theta.shape[1])

    def node_index(self) -> dict[object, int]:
        """``{node id: theta row}`` (a fresh dict)."""
        return {node: i for i, node in enumerate(self.node_ids)}

    # ------------------------------------------------------------------
    @classmethod
    def from_result(
        cls,
        result: GenClusResult,
        include_training_data: bool = True,
    ) -> ModelArtifact:
        """Freeze a fit into an artifact (arrays are copied).

        When ``include_training_data`` is true (the default) and the
        result's network still carries its links and the fitted
        attribute tables, they are embedded as the schema-v2 refit
        payload.  Results reloaded from serve-only (v1) bundles lack
        that data and freeze serve-only again.
        """
        network = result.network
        for node in network.node_ids:
            if not isinstance(node, _SCALARS):
                raise SerializationError(
                    f"node id {node!r} is not a JSON scalar; only "
                    f"str/int/float/bool ids can be persisted"
                )
        relation_types = {
            rel.name: (rel.source, rel.target)
            for rel in network.schema.relations
        }
        edges: dict[str, tuple[np.ndarray, np.ndarray, np.ndarray]] | None
        observations: dict[str, dict[str, Any]] | None
        edges = observations = None
        has_training_data = training_data_available(
            network, tuple(result.attribute_params), result.relation_names
        )
        if include_training_data and has_training_data:
            edges = {}
            for name in result.relation_names:
                sources, targets, weights = network.edge_arrays(name)
                edges[name] = (
                    np.asarray(sources, dtype=np.int64),
                    np.asarray(targets, dtype=np.int64),
                    np.asarray(weights, dtype=np.float64),
                )
            node_index = network.node_index
            observations = {}
            for name in result.attribute_params:
                attribute = network.attribute(name)
                if isinstance(attribute, TextAttribute):
                    compiled = attribute.compile(node_index)
                    counts = compiled.counts.tocsr()
                    observations[name] = {
                        "kind": "categorical",
                        "node_indices": compiled.node_indices.copy(),
                        "data": counts.data.copy(),
                        "indices": counts.indices.copy(),
                        "indptr": counts.indptr.copy(),
                    }
                else:
                    compiled = attribute.compile(node_index)
                    observations[name] = {
                        "kind": "gaussian",
                        "node_indices": compiled.node_indices.copy(),
                        "values": compiled.values.copy(),
                        "owners": compiled.owners.copy(),
                    }
        return cls(
            theta=np.asarray(result.theta, dtype=np.float64).copy(),
            gamma=np.asarray(result.gamma, dtype=np.float64).copy(),
            relation_names=tuple(result.relation_names),
            relation_types=relation_types,
            node_ids=tuple(network.node_ids),
            node_types=tuple(
                network.type_at(i) for i in range(network.num_nodes)
            ),
            object_types=tuple(
                t.name for t in network.schema.object_types
            ),
            attribute_params=_copy_params(result.attribute_params),
            history=result.history,
            edges=edges,
            observations=observations,
        )

    def to_result(self) -> GenClusResult:
        """Rebuild a :class:`GenClusResult`.

        Refit-capable artifacts reconstruct the **full** training
        network -- nodes, links, and attribute tables -- so the result
        can seed a new :class:`~repro.core.state.ModelState`; serve-only
        (v1) artifacts reconstruct nodes and schema without links, as
        before.
        """
        return GenClusResult(
            theta=self.theta.copy(),
            gamma=self.gamma.copy(),
            relation_names=self.relation_names,
            attribute_params=_copy_params(self.attribute_params),
            history=self.history,
            network=self._build_network(include_training_data=True),
        )

    def to_state(self):
        """Rebuild lifecycle state: refit-capable for schema-v2 bundles
        with embedded training data, serve-only otherwise (v1).

        The training payload is decoded **lazily**: serving starts on
        the ``O(nK)`` arrays alone, and the per-edge/per-observation
        reconstruction runs only when the state's refit path
        (``to_problem`` / ``promote``) first needs it.
        """
        from repro.core.state import ModelState

        return ModelState(
            network=self._build_network(include_training_data=False),
            matrices=None,
            theta=self.theta.copy(),
            gamma=self.gamma.copy(),
            relation_names=self.relation_names,
            attribute_names=tuple(self.attribute_params),
            attribute_params=_copy_params(self.attribute_params),
            refit_capable=self.refit_capable,
            hydrator=(
                self._hydrated_views if self.refit_capable else None
            ),
        )

    def _build_network(
        self, include_training_data: bool
    ) -> HeterogeneousNetwork:
        schema = NetworkSchema()
        for name in self.object_types:
            schema.add_object_type(name)
        for name, (source, target) in self.relation_types.items():
            schema.add_relation(name, source, target)
        network = HeterogeneousNetwork(schema)
        for node, object_type in zip(self.node_ids, self.node_types):
            network.add_node(node, object_type)
        if include_training_data and self.refit_capable:
            self._restore_training_data(network)
        return network

    def _hydrated_views(self):
        """The deferred refit payload: full training network plus link
        views built straight from the stored edge arrays (vectorized
        CSR construction in the fit's relation order)."""
        from repro.hin.views import RelationMatrices

        network = self._build_network(include_training_data=True)
        n = self.num_nodes
        mats = []
        for name in self.relation_names:
            sources, targets, weights = self.edges[name]
            mats.append(
                sparse.csr_matrix(
                    (weights, (sources, targets)), shape=(n, n)
                )
            )
        matrices = RelationMatrices(
            relation_names=self.relation_names,
            matrices=tuple(mats),
            num_nodes=n,
        )
        return network, matrices

    def _restore_training_data(
        self, network: HeterogeneousNetwork
    ) -> None:
        """Re-add embedded edges and observation tables to a rebuilt
        node-only network (ids resolved through ``node_ids`` order)."""
        ids = self.node_ids
        for name, (sources, targets, weights) in self.edges.items():
            for src, dst, weight in zip(sources, targets, weights):
                network.add_edge(
                    ids[int(src)], ids[int(dst)], name, float(weight)
                )
        for name, payload in self.observations.items():
            if payload["kind"] == "categorical":
                vocabulary = self.attribute_params[name]["vocabulary"]
                attribute = TextAttribute(
                    name, frozen_vocabulary=vocabulary
                )
                counts = sparse.csr_matrix(
                    (
                        payload["data"],
                        payload["indices"],
                        payload["indptr"],
                    ),
                    shape=(
                        payload["node_indices"].shape[0],
                        len(vocabulary),
                    ),
                )
                for row, node_idx in enumerate(payload["node_indices"]):
                    start, stop = counts.indptr[row], counts.indptr[row + 1]
                    attribute.add_counts(
                        ids[int(node_idx)],
                        {
                            vocabulary[int(col)]: float(val)
                            for col, val in zip(
                                counts.indices[start:stop],
                                counts.data[start:stop],
                            )
                        },
                    )
            else:
                attribute = NumericAttribute(name)
                node_indices = payload["node_indices"]
                values = payload["values"]
                owners = payload["owners"]
                for value, owner in zip(values, owners):
                    attribute.add_value(
                        ids[int(node_indices[int(owner)])], float(value)
                    )
            network.add_attribute(attribute)

    # ------------------------------------------------------------------
    def save(
        self, path: str | Path, schema_version: int = SCHEMA_VERSION
    ) -> Path:
        """Write the artifact as a single ``.npz`` bundle; returns path.

        Crash-safe: the bundle is written to a same-directory temp
        file and moved into place with ``os.replace``, so a crash
        mid-save can never leave a truncated bundle at ``path``.
        """
        return save_artifact(self, path, schema_version=schema_version)

    @classmethod
    def load(
        cls, path: str | Path, verify_checksums: bool = True, **kwargs
    ) -> ModelArtifact:
        """Read an artifact written by :meth:`save` (checksums
        verified by default; see :func:`load_artifact`)."""
        return load_artifact(
            path, verify_checksums=verify_checksums, **kwargs
        )

    def summary(self) -> str:
        """Readable overview of the persisted model."""
        capability = (
            "refit-capable (training data embedded)"
            if self.refit_capable
            else "serve-only"
        )
        lines = [
            f"GenClus artifact (schema v{self.source_schema_version}): "
            f"{self.num_nodes} nodes, K={self.n_clusters}, {capability}",
            "object types: " + ", ".join(self.object_types),
            "link-type strengths:",
        ]
        for name, gamma in sorted(
            zip(self.relation_names, self.gamma), key=lambda kv: -kv[1]
        ):
            lines.append(f"  {name:<24} {float(gamma):>10.4f}")
        for name, params in self.attribute_params.items():
            if params["kind"] == "categorical":
                detail = f"vocabulary of {len(params['vocabulary'])}"
            else:
                detail = f"{params['means'].shape[0]} components"
            lines.append(f"attribute {name!r}: {params['kind']}, {detail}")
        lines.append(
            f"outer iterations recorded: {len(self.history)}"
        )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# on-disk format
# ----------------------------------------------------------------------
def save_artifact(
    artifact: ModelArtifact,
    path: str | Path,
    schema_version: int = SCHEMA_VERSION,
) -> Path:
    """Serialize to one ``.npz``: arrays + a JSON ``manifest`` entry.

    ``schema_version=1`` writes the legacy serve-only layout (no
    training-data payload) for interoperability with older readers.
    """
    if schema_version not in SUPPORTED_VERSIONS:
        raise SerializationError(
            f"cannot write schema version {schema_version!r} "
            f"(supported: {SUPPORTED_VERSIONS})"
        )
    path = Path(path)
    arrays: dict[str, np.ndarray] = {
        "theta": np.asarray(artifact.theta, dtype=np.float64),
        "gamma": np.asarray(artifact.gamma, dtype=np.float64),
    }
    attributes: list[dict[str, Any]] = []
    for name, params in artifact.attribute_params.items():
        entry: dict[str, Any] = {"name": name, "kind": params["kind"]}
        if params["kind"] == "categorical":
            arrays[f"attr/{name}/beta"] = np.asarray(
                params["beta"], dtype=np.float64
            )
            entry["vocabulary"] = list(params["vocabulary"])
        elif params["kind"] == "gaussian":
            arrays[f"attr/{name}/means"] = np.asarray(
                params["means"], dtype=np.float64
            )
            arrays[f"attr/{name}/variances"] = np.asarray(
                params["variances"], dtype=np.float64
            )
        else:  # pragma: no cover - defensive
            raise SerializationError(
                f"attribute {name!r} has unknown kind {params['kind']!r}"
            )
        attributes.append(entry)

    records = artifact.history.records
    arrays["history/gamma"] = (
        np.stack([r.gamma for r in records])
        if records
        else np.zeros((0, len(artifact.relation_names)))
    )
    arrays["history/scalars"] = np.asarray(
        [
            [
                float(r.outer_iteration),
                r.g1_value,
                r.g2_value,
                float(r.em_iterations),
                float(r.newton_iterations),
                r.em_seconds,
                r.newton_seconds,
            ]
            for r in records
        ],
        dtype=np.float64,
    ).reshape(len(records), 7)

    embed_payload = (
        schema_version >= 2 and artifact.refit_capable
    )
    if embed_payload:
        for name, (sources, targets, weights) in artifact.edges.items():
            arrays[f"edges/{name}/sources"] = np.asarray(
                sources, dtype=np.int64
            )
            arrays[f"edges/{name}/targets"] = np.asarray(
                targets, dtype=np.int64
            )
            arrays[f"edges/{name}/weights"] = np.asarray(
                weights, dtype=np.float64
            )
        for name, payload in artifact.observations.items():
            if payload["kind"] == "categorical":
                keys = ("node_indices", "data", "indices", "indptr")
            else:
                keys = ("node_indices", "values", "owners")
            for key in keys:
                arrays[f"obs/{name}/{key}"] = np.asarray(payload[key])

    manifest = {
        "format": FORMAT,
        "schema_version": schema_version,
        "n_clusters": artifact.n_clusters,
        "relation_names": list(artifact.relation_names),
        "relation_types": {
            name: list(pair)
            for name, pair in artifact.relation_types.items()
        },
        "object_types": list(artifact.object_types),
        "nodes": [
            {"id": node, "type": typ}
            for node, typ in zip(artifact.node_ids, artifact.node_types)
        ],
        "attributes": attributes,
        "arrays": sorted(arrays),
        # per-array CRC32s over the raw buffer bytes; verified by
        # load_artifact (the manifest entry cannot checksum itself)
        "checksums": {
            name: zlib.crc32(np.ascontiguousarray(value).tobytes())
            for name, value in arrays.items()
        },
    }
    if schema_version >= 2:
        manifest["refit_capable"] = embed_payload
    arrays["manifest"] = np.frombuffer(
        json.dumps(manifest).encode("utf-8"), dtype=np.uint8
    )
    # crash-safe write: same-directory temp file, then an atomic
    # rename -- a crash mid-save leaves the old bundle (or nothing)
    # at the target path, never a torn one
    scratch = path.with_name(path.name + ".tmp")
    try:
        with scratch.open("wb") as handle:
            np.savez_compressed(handle, **arrays)
        os.replace(scratch, path)
    except BaseException:
        scratch.unlink(missing_ok=True)
        raise
    return path


def load_artifact(
    path: str | Path,
    verify_checksums: bool = True,
    faults=None,
) -> ModelArtifact:
    """Deserialize an artifact bundle, checking format and version.

    Integrity: each array decodes individually, so a truncated or
    corrupt bundle fails with a
    :class:`~repro.exceptions.SerializationError` naming the path and
    the failing array (never a raw ``zipfile``/``numpy`` traceback);
    with ``verify_checksums`` (the default) every array is then
    verified against the per-array CRC32s the manifest records --
    catching even single-bit corruption that still decodes.  Bundles
    written before checksums existed load unverified.  ``faults``
    optionally traverses the ``artifact.load`` site.
    """
    path = Path(path)
    injector = resolve_faults(faults)
    if injector is not None:
        injector.traverse("artifact.load", path=str(path))
    try:
        bundle = np.load(path, allow_pickle=False)
    except (OSError, ValueError, zipfile.BadZipFile) as exc:
        raise SerializationError(
            f"{path} is not a readable artifact bundle: {exc}"
        ) from exc
    payload: dict[str, np.ndarray] = {}
    current: str | None = None
    try:
        with bundle:
            for current in bundle.files:
                payload[current] = bundle[current]
    except (
        OSError,
        EOFError,
        ValueError,
        zlib.error,
        zipfile.BadZipFile,
    ) as exc:
        if current is None:  # pragma: no cover - defensive
            raise SerializationError(
                f"{path} is not a readable artifact bundle: {exc}"
            ) from exc
        raise SerializationError(
            f"{path} is corrupt: array {current!r} failed to decode "
            f"({exc})"
        ) from exc
    if "manifest" not in payload:
        raise SerializationError(
            f"{path} has no manifest entry; not a serving artifact"
        )
    try:
        manifest = json.loads(bytes(payload["manifest"]).decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SerializationError(
            f"{path} carries a malformed manifest: {exc}"
        ) from exc
    if manifest.get("format") != FORMAT:
        raise SerializationError(
            f"unsupported format marker {manifest.get('format')!r}; "
            f"expected {FORMAT!r}"
        )
    version = manifest.get("schema_version")
    if version not in SUPPORTED_VERSIONS:
        raise SerializationError(
            f"artifact schema version {version!r} is not supported by "
            f"this library (supported: {SUPPORTED_VERSIONS}); "
            f"re-export the model or upgrade the library"
        )
    try:
        artifact = _decode(manifest, payload)
    except (KeyError, TypeError, IndexError) as exc:
        raise SerializationError(
            f"malformed artifact payload in {path}: {exc}"
        ) from exc
    if verify_checksums:
        _verify_checksums(path, manifest, payload)
    return artifact


def _verify_checksums(
    path: Path, manifest: dict[str, Any], payload: dict[str, np.ndarray]
) -> None:
    """Compare each array against the manifest's recorded CRC32.

    Structural validation (:func:`_decode`) has already passed, so a
    mismatch here means value corruption that still decodes -- flipped
    bits, a swapped array, tampering.  Bundles without a ``checksums``
    manifest key (written before checksums existed) pass unverified.
    """
    recorded = manifest.get("checksums")
    if not recorded:
        return
    for name, expected in recorded.items():
        array = payload.get(name)
        if array is None:
            continue  # absence is _decode's "missing arrays" error
        actual = zlib.crc32(np.ascontiguousarray(array).tobytes())
        if actual != int(expected):
            raise SerializationError(
                f"{path}: checksum mismatch for array {name!r} "
                f"(manifest records crc32={expected}, got {actual}); "
                f"the bundle is corrupt or was modified after save. "
                f"Pass verify_checksums=False to load anyway."
            )


def _decode(
    manifest: dict[str, Any], payload: dict[str, np.ndarray]
) -> ModelArtifact:
    missing = [key for key in manifest["arrays"] if key not in payload]
    if missing:
        raise SerializationError(
            f"artifact is missing declared arrays: {missing}"
        )
    theta = np.asarray(payload["theta"], dtype=np.float64)
    gamma = np.asarray(payload["gamma"], dtype=np.float64)
    relation_names = tuple(manifest["relation_names"])
    if theta.ndim != 2:
        raise SerializationError(
            f"theta must be 2-D, got shape {theta.shape}"
        )
    if theta.shape[1] != int(manifest["n_clusters"]):
        raise SerializationError(
            f"theta has {theta.shape[1]} columns but the manifest "
            f"declares n_clusters={manifest['n_clusters']}"
        )
    nodes = manifest["nodes"]
    if theta.shape[0] != len(nodes):
        raise SerializationError(
            f"theta has {theta.shape[0]} rows but the manifest lists "
            f"{len(nodes)} nodes"
        )
    if gamma.shape != (len(relation_names),):
        raise SerializationError(
            f"gamma has shape {gamma.shape} but the manifest lists "
            f"{len(relation_names)} relations"
        )

    attribute_params: dict[str, dict] = {}
    for entry in manifest["attributes"]:
        name = entry["name"]
        if entry["kind"] == "categorical":
            attribute_params[name] = {
                "kind": "categorical",
                "beta": np.asarray(
                    payload[f"attr/{name}/beta"], dtype=np.float64
                ),
                "vocabulary": tuple(entry["vocabulary"]),
            }
        elif entry["kind"] == "gaussian":
            attribute_params[name] = {
                "kind": "gaussian",
                "means": np.asarray(
                    payload[f"attr/{name}/means"], dtype=np.float64
                ),
                "variances": np.asarray(
                    payload[f"attr/{name}/variances"], dtype=np.float64
                ),
            }
        else:
            raise SerializationError(
                f"unknown attribute kind {entry['kind']!r}"
            )

    history = RunHistory(relation_names=relation_names)
    gammas = payload["history/gamma"]
    scalars = payload["history/scalars"]
    for row, gamma_row in zip(scalars, gammas):
        history.append(
            IterationRecord(
                outer_iteration=int(row[0]),
                gamma=np.asarray(gamma_row, dtype=np.float64),
                g1_value=float(row[1]),
                g2_value=float(row[2]),
                em_iterations=int(row[3]),
                newton_iterations=int(row[4]),
                em_seconds=float(row[5]),
                newton_seconds=float(row[6]),
            )
        )

    edges: dict[str, tuple[np.ndarray, np.ndarray, np.ndarray]] | None
    observations: dict[str, dict[str, Any]] | None
    edges = observations = None
    if manifest.get("refit_capable"):
        edges = {
            name: (
                np.asarray(
                    payload[f"edges/{name}/sources"], dtype=np.int64
                ),
                np.asarray(
                    payload[f"edges/{name}/targets"], dtype=np.int64
                ),
                np.asarray(
                    payload[f"edges/{name}/weights"], dtype=np.float64
                ),
            )
            for name in relation_names
        }
        observations = {}
        for entry in manifest["attributes"]:
            name = entry["name"]
            if entry["kind"] == "categorical":
                observations[name] = {
                    "kind": "categorical",
                    "node_indices": np.asarray(
                        payload[f"obs/{name}/node_indices"],
                        dtype=np.int64,
                    ),
                    "data": np.asarray(
                        payload[f"obs/{name}/data"], dtype=np.float64
                    ),
                    "indices": np.asarray(
                        payload[f"obs/{name}/indices"], dtype=np.int64
                    ),
                    "indptr": np.asarray(
                        payload[f"obs/{name}/indptr"], dtype=np.int64
                    ),
                }
            else:
                observations[name] = {
                    "kind": "gaussian",
                    "node_indices": np.asarray(
                        payload[f"obs/{name}/node_indices"],
                        dtype=np.int64,
                    ),
                    "values": np.asarray(
                        payload[f"obs/{name}/values"], dtype=np.float64
                    ),
                    "owners": np.asarray(
                        payload[f"obs/{name}/owners"], dtype=np.int64
                    ),
                }

    return ModelArtifact(
        theta=theta,
        gamma=gamma,
        relation_names=relation_names,
        relation_types={
            name: (pair[0], pair[1])
            for name, pair in manifest["relation_types"].items()
        },
        node_ids=tuple(entry["id"] for entry in nodes),
        node_types=tuple(entry["type"] for entry in nodes),
        object_types=tuple(manifest["object_types"]),
        attribute_params=attribute_params,
        history=history,
        edges=edges,
        observations=observations,
        source_schema_version=int(manifest["schema_version"]),
    )


def _copy_params(params: dict[str, dict]) -> dict[str, dict]:
    """Deep-enough copy of the attribute parameter dict (arrays copied)."""
    copied: dict[str, dict] = {}
    for name, entry in params.items():
        fresh = dict(entry)
        for key in ("beta", "means", "variances"):
            if key in fresh:
                fresh[key] = np.asarray(
                    fresh[key], dtype=np.float64
                ).copy()
        copied[name] = fresh
    return copied
