"""Model serving: persisted artifacts plus online fold-in inference.

The batch reproduction fits a model and exits; this package turns a fit
into something that lives through the whole model lifecycle:

* :mod:`repro.serving.artifact` -- versioned single-file persistence of
  a fitted model (``.npz`` arrays + JSON manifest), with a
  ``GenClusResult.save()/load()`` façade on the result object itself.
  Schema v2 embeds the training edges and attribute observations, so a
  reloaded model is **refit-capable**; v1 bundles still load
  (serve-only).
* :mod:`repro.serving.foldin` -- batch posterior assignment for unseen
  nodes: the paper's EM theta update (Eqs. 10-12) iterated to a fixed
  point with every fitted parameter frozen, vectorized over the batch.
* :mod:`repro.serving.engine` -- :class:`InferenceEngine`: drives a
  shared :class:`~repro.core.state.ModelState` through serving --
  incremental deltas (``extend`` / ``add_links``, re-folding only the
  touched component), LRU-memoized transient queries, extension-space
  telemetry and eviction (``evict``), and ``promote()``: a warm-started
  full refit that turns folded-in nodes into first-class training data
  and rebases the engine onto the result.
* :mod:`repro.serving.cluster` / :mod:`repro.serving.router` /
  :mod:`repro.serving.driver` -- the sharded serving cluster:
  :class:`ShardPlan` pins contiguous row blocks onto shards,
  :class:`ShardedEngine` scatter-gathers the engine API across
  per-shard engines (bit-identical to a single engine at every shard
  count), and :class:`RetrainDriver` runs the autonomic policy loop
  (:class:`RetrainPolicy`) that promotes on extension pressure or
  query staleness and rebalances the plan afterwards.
* :mod:`repro.serving.supervision` -- fault tolerance for the cluster:
  :class:`SupervisionPolicy` / :class:`ShardSupervisor` wrap every
  router -> shard call with bounded deterministic retries, per-call
  timeouts, and per-shard circuit breakers that rebuild a broken
  shard from the shared frozen base plus its replayed durable deltas;
  partial-mode ``score_many`` degrades with typed
  :class:`ShardFailure` markers instead of failing the batch.
  Failures are scripted deterministically with :mod:`repro.faults`.
* :mod:`repro.serving.transport` / :mod:`repro.serving.worker` -- the
  out-of-process backend: shard engines run in separate worker
  processes (:class:`ProcessTransport`), each cold-starting from the
  schema-v3 mmap bundle (the frozen base shared read-only through the
  OS page cache) and answering the shard surface over a
  length-prefixed, pickle-free socket protocol.  The in-process
  :class:`InprocessTransport` stays the default; both backends are
  bit-identical behind the same router.  A worker that dies is
  respawned and its durable deltas replayed (the supervision layer's
  breaker/rebuild path, extended to process death).
* :mod:`repro.serving.gateway` -- the HTTP front end:
  :class:`Gateway` is an asyncio server (stdlib-only) whose
  :class:`MicroBatcher` coalesces concurrent requests into blocked
  ``score_many`` / ``similar_many`` calls (size- or time-triggered
  flushes), with admission control (bounded queue, 429 on overflow)
  and graceful drain; :class:`GatewayServer` runs it on a background
  thread for synchronous callers.

The fitted membership matrix is also a similarity surface:
``engine.similar(node, k)`` / ``similar_many`` /
``suggest_links(node, relation, k)`` answer online top-k queries
through the blocked partial-selection kernels of
:mod:`repro.core.topk` -- no full sort, per-metric precomputes cached
against the state version, bit-identical at every worker and shard
count and equal to the offline :func:`repro.eval.reference_ranking`.

A small CLI ships as ``python -m repro.serving``
(``info`` / ``score`` / ``score --batch`` / ``similar`` /
``suggest-links`` / ``shard-plan`` / ``chaos`` / ``serve``).

Typical lifecycle::

    result = GenClus(config).fit(network, attributes=["title"])
    result.save("model.npz")                  # schema v2: refit-capable

    engine = InferenceEngine.load("model.npz")
    membership = engine.query(
        "paper",
        links=[("written_by", "author-4", 1.0)],
        text={"title": ["database", "query"]},
    )
    engine.extend([NewNode("paper-8", "paper",
                           links=[("written_by", "author-4", 1.0)])])
    promoted = engine.promote()               # warm-started refit
"""

from repro.serving.artifact import (
    FORMAT,
    SCHEMA_VERSION,
    ModelArtifact,
    load_artifact,
    save_artifact,
)
from repro.serving.cluster import ShardPlan
from repro.serving.driver import (
    RetrainDriver,
    RetrainPolicy,
    RetrainRound,
)
from repro.serving.engine import InferenceEngine
from repro.serving.foldin import (
    FoldInOutcome,
    FrozenModel,
    NewNode,
    fold_in,
)
from repro.serving.gateway import Gateway, GatewayBusy, GatewayServer, MicroBatcher
from repro.serving.router import ShardedEngine
from repro.serving.supervision import (
    CircuitBreaker,
    ShardFailedError,
    ShardFailure,
    ShardSupervisor,
    SupervisionPolicy,
)
from repro.serving.transport import (
    InprocessTransport,
    ProcessTransport,
    RemoteShardError,
    TransportError,
)

__all__ = [
    "CircuitBreaker",
    "FORMAT",
    "FoldInOutcome",
    "FrozenModel",
    "Gateway",
    "GatewayBusy",
    "GatewayServer",
    "InferenceEngine",
    "InprocessTransport",
    "MicroBatcher",
    "ModelArtifact",
    "NewNode",
    "ProcessTransport",
    "RemoteShardError",
    "RetrainDriver",
    "RetrainPolicy",
    "RetrainRound",
    "SCHEMA_VERSION",
    "ShardFailedError",
    "ShardFailure",
    "ShardPlan",
    "ShardSupervisor",
    "ShardedEngine",
    "SupervisionPolicy",
    "TransportError",
    "fold_in",
    "load_artifact",
    "save_artifact",
]
