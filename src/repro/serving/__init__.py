"""Model serving: persisted artifacts plus online fold-in inference.

The batch reproduction fits a model and exits; this package turns a fit
into something that can answer queries:

* :mod:`repro.serving.artifact` -- versioned single-file persistence of
  a fitted model (``.npz`` arrays + JSON manifest), with a
  ``GenClusResult.save()/load()`` façade on the result object itself.
* :mod:`repro.serving.foldin` -- batch posterior assignment for unseen
  nodes: the paper's EM theta update (Eqs. 10-12) iterated to a fixed
  point with every fitted parameter frozen, vectorized over the batch.
* :mod:`repro.serving.engine` -- :class:`InferenceEngine`: holds a
  loaded artifact, accepts incremental deltas (new nodes and links
  appended to the network views without recompiling), and memoizes
  repeated transient queries with an LRU cache.

A small CLI ships as ``python -m repro.serving`` (``info`` / ``score``).

Typical round trip::

    result = GenClus(config).fit(network, attributes=["title"])
    result.save("model.npz")

    engine = InferenceEngine.load("model.npz")
    membership = engine.query(
        "paper",
        links=[("written_by", "author-4", 1.0)],
        text={"title": ["database", "query"]},
    )
"""

from repro.serving.artifact import (
    FORMAT,
    SCHEMA_VERSION,
    ModelArtifact,
    load_artifact,
    save_artifact,
)
from repro.serving.engine import InferenceEngine
from repro.serving.foldin import (
    FoldInOutcome,
    FrozenModel,
    NewNode,
    fold_in,
)

__all__ = [
    "FORMAT",
    "FoldInOutcome",
    "FrozenModel",
    "InferenceEngine",
    "ModelArtifact",
    "NewNode",
    "SCHEMA_VERSION",
    "fold_in",
    "load_artifact",
    "save_artifact",
]
