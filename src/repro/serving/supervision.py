"""Supervised shard calls: retries, backoff, and circuit breakers.

:class:`ShardSupervisor` wraps every router -> shard call with the
fault-tolerance policy of :class:`SupervisionPolicy`:

* **Bounded retries with deterministic backoff** -- a failed call is
  retried up to ``max_retries`` times, sleeping a jitter-free
  exponential schedule between attempts (``backoff_base *
  backoff_factor**k``, capped at ``backoff_max``).  No randomness: two
  runs of the same fault script retry at the same instants, which is
  what lets the chaos suite pin exact schedules.
* **Per-call timeouts** -- with ``call_timeout`` set, each attempt runs
  on the supervisor's own pool and is abandoned (counted as a failure)
  when it overruns.  With the default ``None`` the attempt runs inline
  on the caller's thread: the fault-free supervised path then executes
  the *identical* code the unsupervised router runs, which is how the
  determinism contract extends to supervision-on.
* **Result validation** -- a validator (the router checks score
  finiteness) runs inside the attempt, so corrupted results count as
  failures and are retried; a supervised batch can degrade, but it can
  never return wrong numbers.
* **A per-shard circuit breaker** (closed -> open -> half-open): after
  ``breaker_threshold`` consecutive failures the shard is declared
  broken, calls fail fast without touching it, and the supervisor's
  ``on_open`` hook fires -- the router uses it to rebuild the shard
  engine from the shared frozen base plus its replayed durable deltas.
  After ``breaker_reset_after`` seconds the next call probes the shard
  (half-open); one success re-closes, one failure re-opens.

Every event records into the router's metrics registry
(``repro_shard_retries_total``, ``repro_breaker_state``,
``repro_breaker_opens_total``); :class:`ShardFailure` is the typed
per-query marker partial-mode ``score_many`` returns for queries owned
by a broken shard.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass

from repro.exceptions import ServingError

__all__ = [
    "BREAKER_CLOSED",
    "BREAKER_HALF_OPEN",
    "BREAKER_OPEN",
    "CircuitBreaker",
    "ShardFailedError",
    "ShardFailure",
    "ShardSupervisor",
    "SupervisionPolicy",
]

# Breaker states, exported as gauge values (repro_breaker_state).
BREAKER_CLOSED = 0
BREAKER_HALF_OPEN = 1
BREAKER_OPEN = 2

_STATE_NAMES = {
    BREAKER_CLOSED: "closed",
    BREAKER_HALF_OPEN: "half-open",
    BREAKER_OPEN: "open",
}


@dataclass(frozen=True)
class SupervisionPolicy:
    """Fault-tolerance knobs for supervised shard calls.

    Parameters
    ----------
    max_retries:
        Retries after the first failed attempt (total attempts =
        ``1 + max_retries``).
    backoff_base, backoff_factor, backoff_max:
        The deterministic backoff schedule: retry ``k`` (1-based)
        sleeps ``min(backoff_base * backoff_factor**(k-1),
        backoff_max)`` seconds.  No jitter, by design.
    call_timeout:
        Per-attempt wall-clock budget in seconds; ``None`` (default)
        runs attempts inline with no timeout -- the bit-identical
        fault-free path.
    breaker_threshold:
        Consecutive failures that trip a shard's breaker open.
    breaker_reset_after:
        Seconds an open breaker waits before letting one probe
        through (half-open).
    """

    max_retries: int = 2
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 1.0
    call_timeout: float | None = None
    breaker_threshold: int = 3
    breaker_reset_after: float = 30.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ServingError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.backoff_base < 0:
            raise ServingError(
                f"backoff_base must be >= 0, got {self.backoff_base}"
            )
        if self.backoff_factor < 1:
            raise ServingError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if self.backoff_max < self.backoff_base:
            raise ServingError(
                f"backoff_max ({self.backoff_max}) must be >= "
                f"backoff_base ({self.backoff_base})"
            )
        if self.call_timeout is not None and self.call_timeout <= 0:
            raise ServingError(
                f"call_timeout must be > 0 when set, got "
                f"{self.call_timeout}"
            )
        if self.breaker_threshold < 1:
            raise ServingError(
                f"breaker_threshold must be >= 1, got "
                f"{self.breaker_threshold}"
            )
        if self.breaker_reset_after < 0:
            raise ServingError(
                f"breaker_reset_after must be >= 0, got "
                f"{self.breaker_reset_after}"
            )

    def backoff_schedule(self) -> tuple[float, ...]:
        """The sleep before each retry, in order -- pure function of
        the policy, identical on every run."""
        return tuple(
            min(
                self.backoff_base * self.backoff_factor**k,
                self.backoff_max,
            )
            for k in range(self.max_retries)
        )


@dataclass(frozen=True)
class ShardFailure:
    """Typed per-query marker for a query owned by a broken shard.

    Partial-mode ``score_many`` returns these in place of membership
    rows -- a degraded batch names exactly which shard failed and why,
    and can never silently substitute wrong numbers.
    """

    shard: int
    error: str
    site: str = "shard.foldin"


class ShardFailedError(ServingError):
    """A supervised shard call failed for good: retries exhausted, or
    the shard's breaker is open (fail-fast)."""

    def __init__(
        self, shard: int, site: str, message: str, attempts: int = 0
    ) -> None:
        self.shard = shard
        self.site = site
        self.attempts = attempts
        super().__init__(message)


class CircuitBreaker:
    """One shard's closed -> open -> half-open state machine.

    Transitions are driven by :meth:`allow` / :meth:`record_success` /
    :meth:`record_failure`; the clock is injectable so tests can walk
    the reset window deterministically.  Not internally locked -- the
    supervisor serializes access per shard.
    """

    def __init__(self, policy: SupervisionPolicy, clock=time.monotonic) -> None:
        self._policy = policy
        self._clock = clock
        self._state = BREAKER_CLOSED
        self._failures = 0
        self._opened_at = 0.0

    @property
    def state(self) -> int:
        return self._state

    @property
    def state_name(self) -> str:
        return _STATE_NAMES[self._state]

    @property
    def consecutive_failures(self) -> int:
        return self._failures

    def allow(self) -> bool:
        """Whether a call may proceed; an open breaker past its reset
        window transitions to half-open and lets one probe through."""
        if self._state == BREAKER_OPEN:
            elapsed = self._clock() - self._opened_at
            if elapsed < self._policy.breaker_reset_after:
                return False
            self._state = BREAKER_HALF_OPEN
        return True

    def record_success(self) -> None:
        self._state = BREAKER_CLOSED
        self._failures = 0

    def record_failure(self) -> bool:
        """Count a failure; returns True when this one trips the
        breaker open (a half-open probe failure re-opens instantly)."""
        self._failures += 1
        tripped = (
            self._state == BREAKER_HALF_OPEN
            or self._failures >= self._policy.breaker_threshold
        )
        if tripped and self._state != BREAKER_OPEN:
            self._state = BREAKER_OPEN
            self._opened_at = self._clock()
            return True
        return False

    def reset(self) -> None:
        """Force-close (an operator heal)."""
        self.record_success()


class ShardSupervisor:
    """Runs shard calls under the policy, one breaker per shard.

    Parameters
    ----------
    n_shards:
        Cluster width (breakers are indexed by shard id).
    policy:
        The :class:`SupervisionPolicy`.
    metrics:
        The router's :class:`~repro.serving.telemetry.RouterMetrics`
        (supervision families are cluster-scope).
    on_open:
        Optional ``on_open(shard)`` hook fired when a breaker trips
        open -- the router's shard-rebuild entry point.
    clock, sleep:
        Injectable time sources for deterministic tests.
    """

    def __init__(
        self,
        n_shards: int,
        policy: SupervisionPolicy,
        metrics,
        on_open=None,
        clock=time.monotonic,
        sleep=time.sleep,
    ) -> None:
        if n_shards < 1:
            raise ServingError(
                f"n_shards must be >= 1, got {n_shards}"
            )
        self.policy = policy
        self._metrics = metrics
        self._on_open = on_open
        self._sleep = sleep
        self._breakers = tuple(
            CircuitBreaker(policy, clock) for _ in range(n_shards)
        )
        self._schedule = policy.backoff_schedule()
        self._pool: ThreadPoolExecutor | None = None
        self._n_shards = n_shards
        for shard in range(n_shards):
            self._set_state_gauge(shard)

    # ------------------------------------------------------------------
    def breaker(self, shard: int) -> CircuitBreaker:
        return self._breakers[shard]

    def states(self) -> list[str]:
        """Breaker state names, in shard order (for ``info()``)."""
        return [b.state_name for b in self._breakers]

    def reset(self, shard: int) -> None:
        """Close a shard's breaker (after an operator heal)."""
        self._breakers[shard].reset()
        self._set_state_gauge(shard)

    # ------------------------------------------------------------------
    def call(self, shard: int, site: str, fn, validate=None):
        """Run ``fn`` for ``shard`` under the policy.

        Raises :class:`ShardFailedError` when the breaker is open
        (fail-fast, ``fn`` untouched) or every attempt failed; any
        other exception is a policy bug.  ``validate(result)`` runs
        inside each attempt, so an invalid result is a retryable
        failure, never a returned value.
        """
        breaker = self._breakers[shard]
        if not breaker.allow():
            raise ShardFailedError(
                shard,
                site,
                f"shard {shard} circuit breaker is open "
                f"(fails fast until the reset window elapses or the "
                f"shard is healed)",
            )
        self._set_state_gauge(shard)  # may have moved to half-open
        attempts = 1 + self.policy.max_retries
        last_error: Exception | None = None
        for attempt in range(attempts):
            if attempt:
                self._metrics.shard_retries.inc()
                self._sleep(self._schedule[attempt - 1])
            try:
                result = self._attempt(fn)
                if validate is not None:
                    validate(result)
            except Exception as exc:
                last_error = exc
                tripped = breaker.record_failure()
                self._set_state_gauge(shard)
                if tripped:
                    self._metrics.breaker_opens.inc()
                    if self._on_open is not None:
                        self._on_open(shard)
                    break  # open: no point burning the remaining retries
            else:
                breaker.record_success()
                self._set_state_gauge(shard)
                return result
        raise ShardFailedError(
            shard,
            site,
            f"shard {shard} call at {site!r} failed "
            f"({breaker.state_name} breaker): {last_error}",
            attempts=attempts,
        ) from last_error

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    # ------------------------------------------------------------------
    def _attempt(self, fn):
        timeout = self.policy.call_timeout
        if timeout is None:
            # inline: the supervised fault-free path runs the exact
            # unsupervised code (the determinism-contract clause)
            return fn()
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self._n_shards,
                thread_name_prefix="repro-shard-supervisor",
            )
        future = self._pool.submit(fn)
        try:
            return future.result(timeout)
        except FutureTimeoutError:
            future.cancel()
            raise ServingError(
                f"shard call exceeded call_timeout={timeout}s"
            ) from None

    def _set_state_gauge(self, shard: int) -> None:
        self._metrics.breaker_state(shard).set(
            self._breakers[shard].state
        )
