"""Online fold-in: posterior cluster assignment for unseen nodes.

The EM theta update of Eqs. 10-12 reads, for one object ``v``,

    theta_vk  propto  sum_{e=<v,u>} gamma(phi(e)) w(e) theta_uk
              + sum_X sum_{x in v[X]} p(z_vx = k | theta_v, params_X)

With the fitted parameters **frozen** -- gamma, the attribute components
(beta / mu, sigma^2), and every fitted node's membership row -- this
becomes a cheap fixed point over only the *new* nodes' rows: the same
query fold-in trick NetPLSA-style topic models use, generalized to the
heterogeneous-link + incomplete-attribute setting.  A new node needs
neither attributes (links alone drive it, the paper's incomplete case)
nor links (attributes alone drive it); with neither it stays uniform.

The whole batch is folded in at once: new-node out-links are compiled
into the ``m`` new rows of the delta-extended global index space (only
those rows are ever multiplied -- frozen base rows never re-read their
neighbours -- so the full ``(n+m, n+m)`` views of
:func:`~repro.hin.views.extend_relation_matrices` are never
materialized here).  Each fixed-point sweep is two sparse products (a
constant base-block term computed once, plus the in-batch block) and
one frozen-parameter responsibility pass per attribute --
``O(K (|E_new| + |obs_new|))`` per iteration regardless of the fitted
network's size.
"""

from __future__ import annotations

import time
from collections import Counter
from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass, field
from functools import cached_property
from typing import Any

import numpy as np
from scipy import sparse

from repro.core.attribute_models import (
    CountsPattern,
    categorical_theta_term,
    gaussian_theta_term,
)
from repro.core.kernels import (
    BlockPlan,
    EMWorkspace,
    PropagationOperator,
    csr_matmul_rows,
    normalize_update_block,
    resolve_workers,
    row_max,
    run_blocks,
)
from repro.exceptions import ServingError


@dataclass(frozen=True)
class NewNode:
    """One unseen node to fold into a fitted model.

    Attributes
    ----------
    node:
        Hashable id; must not collide with a fitted node.
    object_type:
        The node's type, checked against relation declarations.
    links:
        Out-links ``(relation, target, weight)``; 2-tuples get weight
        1.0.  Targets may be fitted nodes or other nodes of the same
        batch.
    text:
        ``{attribute: bag}`` where a bag is either ``{term: count}`` or
        an iterable of tokens.  Terms outside the fitted vocabulary are
        dropped (counted in :attr:`FoldInOutcome.oov_terms`).
    numeric:
        ``{attribute: values}`` -- finite observation lists.
    """

    node: object
    object_type: str
    links: tuple[tuple[str, object, float], ...] = ()
    text: Mapping[str, Any] = field(default_factory=dict)
    numeric: Mapping[str, Sequence[float]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        normalized = []
        for link in self.links:
            if len(link) == 2:
                relation, target = link
                weight = 1.0
            elif len(link) == 3:
                relation, target, weight = link
            else:
                raise ServingError(
                    f"node {self.node!r}: link {link!r} must be "
                    f"(relation, target[, weight])"
                )
            try:
                weight = float(weight)
            except (TypeError, ValueError):
                raise ServingError(
                    f"node {self.node!r}: link weight {weight!r} is "
                    f"not a number"
                ) from None
            if not np.isfinite(weight) or weight < 0:
                raise ServingError(
                    f"node {self.node!r}: link weight {weight!r} must "
                    f"be finite and non-negative"
                )
            normalized.append((relation, target, weight))
        object.__setattr__(self, "links", tuple(normalized))
        # materialize observation containers: callers may hand in
        # one-pass iterables, and the spec is read more than once
        # (canonical cache keys, re-folds after link deltas)
        text = {}
        for attribute, bag in dict(self.text).items():
            if isinstance(bag, Mapping):
                counts = {}
                for term, count in bag.items():
                    try:
                        value = float(count)
                    except (TypeError, ValueError):
                        value = float("nan")
                    if not np.isfinite(value) or value < 0:
                        raise ServingError(
                            f"node {self.node!r}: bad count {count!r} "
                            f"for term {term!r} on attribute "
                            f"{attribute!r}"
                        )
                    counts[str(term)] = value
                text[attribute] = counts
            elif isinstance(bag, Iterable) and not isinstance(
                bag, (str, bytes)
            ):
                text[attribute] = tuple(bag)
            else:
                raise ServingError(
                    f"node {self.node!r}: text for {attribute!r} must "
                    f"be a term->count mapping or a token iterable, "
                    f"got {type(bag).__name__}"
                )
        object.__setattr__(self, "text", text)
        numeric = {}
        for attribute, values in dict(self.numeric).items():
            try:
                numeric[attribute] = tuple(float(v) for v in values)
            except (TypeError, ValueError):
                raise ServingError(
                    f"node {self.node!r}: values for {attribute!r} "
                    f"must be numbers"
                ) from None
        object.__setattr__(self, "numeric", numeric)


@dataclass(frozen=True)
class FrozenModel:
    """The read-only view of a fitted model that fold-in scores against.

    Built from a :class:`~repro.serving.artifact.ModelArtifact` (or
    grown incrementally by the engine); everything here is treated as
    immutable by :func:`fold_in`.
    """

    theta: np.ndarray
    gamma: np.ndarray
    relation_names: tuple[str, ...]
    relation_types: dict[str, tuple[str, str]]
    object_types: tuple[str, ...]
    # node_index/node_types may be engine-owned growable containers
    # (mutated in place as deltas append nodes); fold_in only reads them
    node_index: Mapping[object, int]
    node_types: Sequence[str]
    attribute_params: dict[str, dict]

    @property
    def num_nodes(self) -> int:
        return int(self.theta.shape[0])

    @property
    def n_clusters(self) -> int:
        return int(self.theta.shape[1])

    @cached_property
    def vocabulary_index(self) -> dict[str, dict[str, int]]:
        """``{attribute: {term: column}}`` per text attribute, built
        once per model so repeated queries do not pay ``O(vocab)``."""
        return {
            name: {
                term: col
                for col, term in enumerate(params["vocabulary"])
            }
            for name, params in self.attribute_params.items()
            if params["kind"] == "categorical"
        }

    def without(self, nodes: Iterable[object]) -> FrozenModel:
        """A view of this model with some served nodes *hidden*.

        Used to re-fold a subset of already-served extension nodes: the
        subset must look unseen to :func:`fold_in` (it re-enters as the
        batch), while every other served row stays a valid link target.
        Theta rows of hidden nodes are never read -- their ids resolve
        through the batch index instead.
        """
        masked = FrozenModel(
            theta=self.theta,
            gamma=self.gamma,
            relation_names=self.relation_names,
            relation_types=self.relation_types,
            object_types=self.object_types,
            node_index=_MaskedIndex(self.node_index, frozenset(nodes)),
            node_types=self.node_types,
            attribute_params=self.attribute_params,
        )
        masked.__dict__["vocabulary_index"] = self.vocabulary_index
        return masked

    @classmethod
    def from_artifact(cls, artifact) -> FrozenModel:
        """Freeze an artifact for serving (arrays shared, not copied)."""
        return cls(
            theta=np.asarray(artifact.theta, dtype=np.float64),
            gamma=np.asarray(artifact.gamma, dtype=np.float64),
            relation_names=artifact.relation_names,
            relation_types=dict(artifact.relation_types),
            object_types=artifact.object_types,
            node_index=artifact.node_index(),
            node_types=artifact.node_types,
            attribute_params=artifact.attribute_params,
        )

    def type_of(self, node: object) -> str:
        return self.node_types[self.node_index[node]]


class _MaskedIndex(Mapping):
    """A live node-index mapping with a set of ids hidden.

    O(1) per lookup and O(|hidden|) to build -- no copy of the
    underlying (possibly very large) index.  ``hidden`` must be a
    subset of the base mapping's keys.
    """

    __slots__ = ("_base", "_hidden")

    def __init__(
        self, base: Mapping[object, int], hidden: frozenset
    ) -> None:
        self._base = base
        self._hidden = hidden

    def __getitem__(self, key: object) -> int:
        if key in self._hidden:
            raise KeyError(key)
        return self._base[key]

    def __contains__(self, key: object) -> bool:
        return key not in self._hidden and key in self._base

    def __iter__(self):
        return (key for key in self._base if key not in self._hidden)

    def __len__(self) -> int:
        return len(self._base) - len(self._hidden)


@dataclass(frozen=True)
class FoldInOutcome:
    """Batch fold-in result.

    Attributes
    ----------
    nodes:
        The folded node ids, fixing the row order of ``theta``.
    theta:
        ``(m, K)`` posterior memberships (rows on the simplex).
    iterations:
        Fixed-point sweeps actually run.
    converged:
        Whether the sweep change dropped below the tolerance.
    oov_terms:
        Total text-term observations dropped for falling outside the
        fitted vocabulary.
    """

    nodes: tuple[object, ...]
    theta: np.ndarray
    iterations: int
    converged: bool
    oov_terms: int

    def membership_of(self, node: object) -> np.ndarray:
        """Posterior membership of one folded node (a copy)."""
        try:
            row = self.nodes.index(node)
        except ValueError:
            raise ServingError(
                f"node {node!r} was not part of this fold-in batch"
            ) from None
        return self.theta[row].copy()

    def hard_labels(self) -> np.ndarray:
        """Arg-max cluster per folded node, aligned with ``nodes``."""
        return np.argmax(self.theta, axis=1)

    def hard_label_of(self, node: object) -> int:
        return int(np.argmax(self.membership_of(node)))


def fold_in(
    model: FrozenModel,
    nodes: Sequence[NewNode],
    max_iterations: int = 100,
    tol: float = 1e-6,
    floor: float = 1e-12,
    num_workers: int = 1,
    block_size: int | None = None,
    obs=None,
) -> FoldInOutcome:
    """Assign posterior memberships to a batch of unseen nodes.

    Iterates the frozen-parameter theta update to a fixed point,
    vectorized over the whole batch.  Raises
    :class:`~repro.exceptions.ServingError` on structurally invalid
    input (duplicate/known ids, unknown relations or targets, type
    mismatches, observations for unfitted attributes).

    ``obs`` (an optional :class:`~repro.obs.Observability`) records the
    per-sweep and whole-call latency histograms
    (``repro_foldin_sweep_seconds`` / ``repro_foldin_seconds``); all
    *counting* stays with the owning engine so shard aggregation never
    double-counts.  Timing reads clocks only -- memberships are
    bit-identical with or without it.

    The fixed-point sweeps run block-by-block over the batch rows
    (``block_size`` rows per block, cache-sized by default): the
    propagation and normalization stages write disjoint row slices, so
    results are bit-identical at any ``num_workers``.  Small batches
    fit one block and behave exactly like the serial sweep.

    **Convergence is per row.**  After each sweep the rows that moved
    at least ``tol`` are the *moving* set; every row that can reach a
    moving row through in-batch links (it reads a moving row, directly
    or transitively) stays live, and all other rows **freeze**, keeping
    their current value verbatim while batchmates keep iterating.  (A
    row whose in-batch link target is still drifting must not stop
    early: its own update can be transiently stationary while its
    input is still in motion.)  The batch converges when every row has
    frozen.  Because a row's trajectory depends only on its own
    observations, its out-link targets, and its in-batch link
    component, freezing makes fold-in **row-decomposable**: rows that
    share no in-batch link path evolve and stop identically no matter
    how the batch is composed, so folding them together, one at a
    time, or split across the shards of a serving cluster produces
    bit-identical memberships.  (Rows connected by in-batch links must
    stay in one batch -- their trajectories read each other.)
    """
    n = model.num_nodes
    k = model.n_clusters
    if not nodes:
        return FoldInOutcome(
            nodes=(),
            theta=np.zeros((0, k)),
            iterations=0,
            converged=True,
            oov_terms=0,
        )
    recording = obs is not None and obs.recording
    if recording:
        sweep_hist = obs.metrics.histogram(
            "repro_foldin_sweep_seconds",
            "Wall-clock seconds per fold-in fixed-point sweep",
        )
        call_hist = obs.metrics.histogram(
            "repro_foldin_seconds",
            "Wall-clock seconds per fold-in call (all sweeps)",
        )
        call_start = time.perf_counter()
    batch_index = _index_batch(model, nodes)
    m = len(nodes)

    links_by_relation = _collect_links(model, nodes, batch_index)

    # Per relation, only the m new rows of the delta-extended views are
    # ever multiplied (frozen base rows never re-read their neighbours),
    # so build those row blocks directly -- O(|E_new|), independent of
    # the fitted network's size -- and split them into the frozen-base
    # columns (whose contribution never changes) and in-batch columns.
    # Both halves run through the same fused PropagationOperator the
    # trainer uses: gamma is frozen for the whole fixed point, so every
    # sweep is one combined matmul rather than one per relation.
    base_blocks: list[sparse.csr_matrix] = []
    batch_blocks: list[sparse.csr_matrix] = []
    for name in model.relation_names:
        delta = links_by_relation.get(name, ())
        sources = np.asarray([d[0] - n for d in delta], dtype=np.int64)
        targets = np.asarray([d[1] for d in delta], dtype=np.int64)
        weights = np.asarray([d[2] for d in delta], dtype=np.float64)
        new_rows = sparse.csr_matrix(
            (weights, (sources, targets)), shape=(m, n + m)
        )
        base_blocks.append(new_rows[:, :n].tocsr())
        batch_blocks.append(new_rows[:, n:].tocsr())
    base_operator = PropagationOperator(base_blocks, shape=(m, n))
    batch_operator = PropagationOperator(batch_blocks, shape=(m, m))
    num_workers = resolve_workers(num_workers)
    plan = (
        BlockPlan(m, block_size)
        if block_size is not None
        else batch_operator.block_plan(k)
    )
    constant = base_operator.propagate(
        model.theta, model.gamma, num_workers=num_workers, plan=plan
    )

    text_obs, oov_terms = _compile_text(model, nodes)
    numeric_obs = _compile_numeric(model, nodes)

    # reverse in-batch link map for the per-row convergence rule:
    # dependants[t] = batch rows holding a link to batch row t (the
    # rows whose updates read t's current value)
    dependants: list[list[int]] = [[] for _ in range(m)]
    has_batch_links = False
    for entries in links_by_relation.values():
        for source, target, _weight in entries:
            if target >= n:
                dependants[target - n].append(source - n)
                has_batch_links = True

    theta = np.full((m, k), 1.0 / k)
    spare = np.empty((m, k))
    workspace = EMWorkspace(m, k)
    update = workspace.update
    row_sums = workspace.row_sums
    row_delta = np.empty(m)
    active = np.ones(m, dtype=bool)
    combined = batch_operator.combined(model.gamma)
    iterations = 0
    converged = False
    for iterations in range(1, max_iterations + 1):
        if recording:
            sweep_start = time.perf_counter()
        # frozen rows keep their value verbatim, so blocks (and
        # observation groups) with no live row skip the sweep entirely:
        # a straggler component pays for its own rows, not the batch's
        if active.all():
            block_live = None
        else:
            block_live = [
                bool(active[start:stop].any())
                for start, stop in plan.bounds
            ]

        def propagate_block(index: int, start: int, stop: int) -> None:
            if block_live is not None and not block_live[index]:
                return
            csr_matmul_rows(combined, theta, update, start, stop)
            update[start:stop] += constant[start:stop]

        run_blocks(plan, propagate_block, num_workers)
        for rows, pattern, beta in text_obs:
            if block_live is None or active[rows].any():
                update[rows] += categorical_theta_term(
                    theta[rows], None, beta, pattern=pattern
                )
        for rows, values, owners, means, variances in numeric_obs:
            if block_live is None or active[rows].any():
                update[rows] += gaussian_theta_term(
                    theta[rows], values, owners, means, variances
                )

        # the closing normalize/floor step is the SAME shared kernel
        # training's em_update runs (dead rows stay at the prior, rows
        # re-normalize after flooring) -- one implementation, so
        # training and serving cannot drift apart on these semantics
        def normalize_block(index: int, start: int, stop: int) -> None:
            if block_live is not None and not block_live[index]:
                return
            normalize_update_block(
                update, theta, spare, row_sums, floor, start, stop
            )

        run_blocks(plan, normalize_block, num_workers)
        theta_next = spare
        if not active.all():
            # frozen rows keep their converged value verbatim: the
            # update map at a fixed point is not exactly the identity,
            # so re-applying it would drift a row that already stopped
            # (and would couple its final bits to its batchmates) --
            # this also repairs the rows of skipped blocks, whose
            # `spare` slots still hold the previous sweep's buffer
            frozen = ~active
            theta_next[frozen] = theta[frozen]
        np.subtract(theta_next, theta, out=update)
        np.abs(update, out=update)
        row_max(update, row_delta)
        if has_batch_links:
            # a row stays live while anything it (transitively) reads
            # through in-batch links is still moving: reverse-reachable
            # closure of the moving rows (frozen rows have delta 0 and
            # never re-seed, so freezing is permanent)
            closure = {int(r) for r in np.flatnonzero(row_delta >= tol)}
            stack = list(closure)
            while stack:
                row = stack.pop()
                for dependant in dependants[row]:
                    if active[dependant] and dependant not in closure:
                        closure.add(dependant)
                        stack.append(dependant)
            active[:] = False
            if closure:
                active[list(closure)] = True
        else:
            active &= row_delta >= tol
        theta, spare = theta_next, theta
        if recording:
            sweep_hist.observe(time.perf_counter() - sweep_start)
        if not active.any():
            converged = True
            break
    if recording:
        call_hist.observe(time.perf_counter() - call_start)
    return FoldInOutcome(
        nodes=tuple(spec.node for spec in nodes),
        theta=theta,
        iterations=iterations,
        converged=converged,
        oov_terms=oov_terms,
    )


# ----------------------------------------------------------------------
# batch compilation helpers
# ----------------------------------------------------------------------
def _index_batch(
    model: FrozenModel, nodes: Sequence[NewNode]
) -> dict[object, int]:
    """Batch-local positions, validating ids and object types."""
    batch_index: dict[object, int] = {}
    for position, spec in enumerate(nodes):
        if not isinstance(spec, NewNode):
            raise ServingError(
                f"fold-in expects NewNode specs, got "
                f"{type(spec).__name__}"
            )
        if spec.node in model.node_index:
            raise ServingError(
                f"node {spec.node!r} is already part of the fitted "
                f"model; fold-in only accepts unseen nodes"
            )
        if spec.node in batch_index:
            raise ServingError(
                f"duplicate node {spec.node!r} in fold-in batch"
            )
        if spec.object_type not in model.object_types:
            raise ServingError(
                f"node {spec.node!r} has unknown object type "
                f"{spec.object_type!r} (declared: "
                f"{list(model.object_types)})"
            )
        batch_index[spec.node] = position
    return batch_index


def _collect_links(
    model: FrozenModel,
    nodes: Sequence[NewNode],
    batch_index: dict[object, int],
) -> dict[str, list[tuple[int, int, float]]]:
    """Validate and re-index out-links into the extended index space."""
    n = model.num_nodes
    links: dict[str, list[tuple[int, int, float]]] = {}
    for spec in nodes:
        source = n + batch_index[spec.node]
        for relation, target, weight in spec.links:
            declaration = model.relation_types.get(relation)
            if declaration is None:
                raise ServingError(
                    f"node {spec.node!r}: unknown relation {relation!r}"
                )
            if relation not in model.relation_names:
                raise ServingError(
                    f"node {spec.node!r}: relation {relation!r} carried "
                    f"no links in the fit, so it has no learned "
                    f"strength to weight fold-in links with"
                )
            expected_source, expected_target = declaration
            if spec.object_type != expected_source:
                raise ServingError(
                    f"node {spec.node!r}: relation {relation!r} expects "
                    f"source type {expected_source!r}, node has type "
                    f"{spec.object_type!r}"
                )
            if target in model.node_index:
                target_idx = model.node_index[target]
                target_type = model.node_types[target_idx]
            elif target in batch_index:
                target_idx = n + batch_index[target]
                target_type = nodes[batch_index[target]].object_type
            else:
                raise ServingError(
                    f"node {spec.node!r}: link target {target!r} is "
                    f"neither a fitted node nor part of this batch"
                )
            if target_type != expected_target:
                raise ServingError(
                    f"node {spec.node!r}: relation {relation!r} expects "
                    f"target type {expected_target!r}, node {target!r} "
                    f"has type {target_type!r}"
                )
            if weight > 0.0:
                links.setdefault(relation, []).append(
                    (source, target_idx, weight)
                )
    return links


def _as_bag(bag: Any) -> dict[str, float]:
    """Canonical NewNode bag (counts dict or token tuple) to counts.

    ``NewNode.__post_init__`` already materialized and validated every
    bag, so this is pure shape conversion.
    """
    if isinstance(bag, Mapping):
        return dict(bag)
    return {
        term: float(count)
        for term, count in Counter(str(t) for t in bag).items()
    }


def _compile_text(
    model: FrozenModel, nodes: Sequence[NewNode]
) -> tuple[
    list[tuple[np.ndarray, CountsPattern, np.ndarray]],
    int,
]:
    """Group text observations per attribute into
    (rows, pattern, beta); the sparse counts are decomposed into their
    pattern once here so the fixed-point sweeps reuse it."""
    per_attribute: dict[str, list[tuple[int, dict[str, float]]]] = {}
    for position, spec in enumerate(nodes):
        for attribute, bag in spec.text.items():
            params = _require_params(
                model, spec, attribute, expected_kind="categorical"
            )
            del params
            counts = _as_bag(bag)
            if counts:
                per_attribute.setdefault(attribute, []).append(
                    (position, counts)
                )
    compiled: list[
        tuple[np.ndarray, CountsPattern, np.ndarray]
    ] = []
    oov_terms = 0
    for attribute, observed in per_attribute.items():
        params = model.attribute_params[attribute]
        vocabulary = model.vocabulary_index[attribute]
        rows: list[int] = []
        cols: list[int] = []
        vals: list[float] = []
        node_rows: list[int] = []
        for local_row, (position, counts) in enumerate(observed):
            node_rows.append(position)
            for term, count in counts.items():
                if count <= 0:
                    continue
                col = vocabulary.get(term)
                if col is None:
                    oov_terms += max(int(round(count)), 1)
                    continue
                rows.append(local_row)
                cols.append(col)
                vals.append(count)
        counts_matrix = sparse.csr_matrix(
            (vals, (rows, cols)),
            shape=(len(observed), len(vocabulary)),
            dtype=np.float64,
        )
        if counts_matrix.nnz:
            compiled.append(
                (
                    np.asarray(node_rows, dtype=np.int64),
                    CountsPattern.from_counts(counts_matrix),
                    np.asarray(params["beta"], dtype=np.float64),
                )
            )
    return compiled, oov_terms


def _compile_numeric(
    model: FrozenModel, nodes: Sequence[NewNode]
) -> list[tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]]:
    """Group numeric observations into (rows, values, owners, mu, var)."""
    per_attribute: dict[str, list[tuple[int, list[float]]]] = {}
    for position, spec in enumerate(nodes):
        for attribute, values in spec.numeric.items():
            _require_params(
                model, spec, attribute, expected_kind="gaussian"
            )
            cleaned = [float(v) for v in values]
            for value in cleaned:
                if not np.isfinite(value):
                    raise ServingError(
                        f"node {spec.node!r}: non-finite observation "
                        f"{value!r} for attribute {attribute!r}"
                    )
            if cleaned:
                per_attribute.setdefault(attribute, []).append(
                    (position, cleaned)
                )
    compiled = []
    for attribute, observed in per_attribute.items():
        params = model.attribute_params[attribute]
        node_rows: list[int] = []
        values: list[float] = []
        owners: list[int] = []
        for local_row, (position, obs) in enumerate(observed):
            node_rows.append(position)
            owners.extend([local_row] * len(obs))
            values.extend(obs)
        compiled.append(
            (
                np.asarray(node_rows, dtype=np.int64),
                np.asarray(values, dtype=np.float64),
                np.asarray(owners, dtype=np.int64),
                np.asarray(params["means"], dtype=np.float64),
                np.asarray(params["variances"], dtype=np.float64),
            )
        )
    return compiled


def _require_params(
    model: FrozenModel,
    spec: NewNode,
    attribute: str,
    expected_kind: str,
) -> dict:
    params = model.attribute_params.get(attribute)
    if params is None:
        raise ServingError(
            f"node {spec.node!r}: attribute {attribute!r} was not part "
            f"of the fit (fitted: {list(model.attribute_params)})"
        )
    if params["kind"] != expected_kind:
        raise ServingError(
            f"node {spec.node!r}: attribute {attribute!r} is "
            f"{params['kind']}, but observations were given as "
            f"{'text' if expected_kind == 'categorical' else 'numeric'}"
        )
    return params
