"""The autonomic retrain driver: a policy loop around ``promote()``.

The mechanism for closing the model lifecycle has existed since PR 3
(``engine.promote()`` refits base + extensions warm-started from the
served optimum); what was missing is the *scheduler*: something that
watches serving telemetry and decides **when** refitting is worth it.
:class:`RetrainDriver` is that loop, and it is deliberately dumb about
models and smart about signals:

* **Extension pressure** -- folded-in nodes are second-class (scored
  against a frozen base, never re-learned).  When any engine's owned
  extension space exceeds ``max_extension_nodes``, the served model
  has drifted far enough from its training set to re-learn.  On a
  :class:`~repro.serving.router.ShardedEngine` the watermark is
  **per shard** (one hot shard saturates long before the cluster
  average does).
* **Query staleness** -- a model can also age without growing: after
  ``max_staleness_queries`` transient queries since the last promote,
  the driver refits on suspicion alone.
* **Adaptive cooldown** -- each refit's realized ``g1`` gain (final
  minus first outer iteration of the warm-started history) is checked
  against ``min_g1_gain``; a promote that stopped paying raises the
  trigger thresholds by ``backoff_factor`` until one pays again, so a
  stationary workload stops burning refits (the "autonomic" half:
  the driver tunes its own sensitivity from observed outcomes).

The driver talks to any engine exposing ``info()`` and ``promote()``
-- a singleton :class:`~repro.serving.engine.InferenceEngine` or a
:class:`~repro.serving.router.ShardedEngine` (whose promote refits the
whole cluster and rebalances the shard plan).  ``tick()`` runs the
check-and-maybe-retrain step; with ``background=True`` the refit runs
on the shared PR-4 kernel pool (width 1: refits serialize) and
``join()`` collects it.  Background mode assumes the caller pauses
writes while a refit is in flight -- engines are not internally
locked; the driver refuses to start a second refit before the first
is joined.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.config import GenClusConfig
from repro.core.kernels import shared_pool
from repro.exceptions import ServingError
from repro.obs.observability import Observability
from repro.serving.telemetry import ServingMetrics


@dataclass(frozen=True)
class RetrainPolicy:
    """When to trade serving throughput for a warm-started refit.

    Parameters
    ----------
    max_extension_nodes:
        Retrain when any engine (any *shard*, under a router) owns at
        least this many folded-in extension nodes.  ``None`` disables
        the pressure trigger.
    max_staleness_queries:
        Retrain after this many transient queries served since the
        last promote.  ``None`` disables the staleness trigger.
    min_g1_gain:
        The ``g1`` improvement a refit must realize to count as
        "paying"; a refit below this raises both thresholds by
        ``backoff_factor`` (and a paying refit resets them).
    backoff_factor:
        Multiplier applied to the effective thresholds after an
        unprofitable refit (>= 1; 1 disables the cooldown).
    max_consecutive_failures:
        How many refits may fail back-to-back before the exception
        surfaces to the caller.  The default (1) keeps the historical
        contract: the first failure both records its round and
        raises.  A larger bound turns failures into deterministic,
        jitter-free retries: each failed promote is recorded
        (``RetrainRound.error`` set, ``repro_retrain_failures_total``
        incremented) and swallowed, the trigger stays tripped, and the
        next :meth:`~RetrainDriver.tick` simply tries again -- until
        the bound is hit, which re-raises (and resets the streak so a
        later tick gets a fresh budget).  A successful refit also
        resets the streak.
    """

    max_extension_nodes: int | None = None
    max_staleness_queries: int | None = None
    min_g1_gain: float = 0.0
    backoff_factor: float = 2.0
    max_consecutive_failures: int = 1

    def __post_init__(self) -> None:
        if (
            self.max_extension_nodes is None
            and self.max_staleness_queries is None
        ):
            raise ServingError(
                "a retrain policy needs at least one trigger: set "
                "max_extension_nodes and/or max_staleness_queries"
            )
        if (
            self.max_extension_nodes is not None
            and self.max_extension_nodes < 1
        ):
            raise ServingError(
                f"max_extension_nodes must be >= 1, got "
                f"{self.max_extension_nodes}"
            )
        if (
            self.max_staleness_queries is not None
            and self.max_staleness_queries < 1
        ):
            raise ServingError(
                f"max_staleness_queries must be >= 1, got "
                f"{self.max_staleness_queries}"
            )
        if self.min_g1_gain < 0:
            raise ServingError(
                f"min_g1_gain must be >= 0, got {self.min_g1_gain}"
            )
        if self.backoff_factor < 1:
            raise ServingError(
                f"backoff_factor must be >= 1, got "
                f"{self.backoff_factor}"
            )
        if self.max_consecutive_failures < 1:
            raise ServingError(
                f"max_consecutive_failures must be >= 1, got "
                f"{self.max_consecutive_failures}"
            )


@dataclass(frozen=True)
class RetrainRound:
    """Telemetry for one driver-triggered refit.

    A failed refit is recorded too (``error`` set, the ``g1`` fields
    NaN): background promotes used to vanish from ``rounds`` when they
    raised, leaving the history claiming nothing was ever attempted.
    The exception itself still propagates (from :meth:`~RetrainDriver.tick`
    inline, from :meth:`~RetrainDriver.join` in background mode).
    """

    trigger: str  # "extension_pressure" | "staleness"
    shard_id: int | None  # the shard that tripped (pressure only)
    extension_nodes: int  # promoted into the new base
    g1_first: float
    g1_final: float
    g1_gain: float
    outer_iterations: int
    rebalanced: bool  # did the shard plan change (router only)
    backed_off: bool  # did this round raise the thresholds
    error: str | None = None  # the refit's exception, when it failed


class RetrainDriver:
    """Watches an engine's telemetry and promotes when policy trips.

    Parameters
    ----------
    engine:
        A singleton :class:`~repro.serving.engine.InferenceEngine` or
        a :class:`~repro.serving.router.ShardedEngine`.
    policy:
        The :class:`RetrainPolicy` thresholds.
    config:
        Optional refit :class:`~repro.core.config.GenClusConfig`
        passed through to ``promote()``.
    background:
        Run refits on the shared kernel pool instead of inline;
        ``tick()`` then returns a future and :meth:`join` collects the
        finished :class:`RetrainRound`.
    """

    def __init__(
        self,
        engine,
        policy: RetrainPolicy,
        config: GenClusConfig | None = None,
        background: bool = False,
    ) -> None:
        self._engine = engine
        self._policy = policy
        self._config = config
        self._background = bool(background)
        self._scale = 1.0  # cooldown multiplier on both thresholds
        # record into the engine's registry so retrain telemetry rides
        # the same export (cluster-scope on a router: the retrain
        # families are ROUTER_AUTHORITATIVE); a duck-typed engine
        # without .obs gets a private registry nobody exports
        obs = getattr(engine, "obs", None)
        if obs is None:
            obs = Observability()
        self._metrics = ServingMetrics(obs.metrics)
        self._queries_at_promote = self._queries_served(engine.info())
        self._pending = None
        self._consecutive_failures = 0
        self.rounds: list[RetrainRound] = []

    # ------------------------------------------------------------------
    @property
    def pressure_scale(self) -> float:
        """The live cooldown multiplier (1.0 = thresholds as set)."""
        return self._scale

    @staticmethod
    def _queries_served(info: dict[str, Any]) -> int:
        return int(info["queries"]["served"])

    @staticmethod
    def _shard_pressures(info: dict[str, Any]) -> list[int]:
        """Owned extension nodes per engine: per shard under a router,
        the single extension space otherwise."""
        cluster = info.get("cluster")
        if cluster is not None:
            return [int(n) for n in cluster["shard_extension_nodes"]]
        return [int(info["extension"]["nodes"])]

    def check(self) -> tuple[str, int | None] | None:
        """Evaluate the policy against live telemetry.

        Returns ``(trigger, shard_id)`` when a refit is due (shard_id
        is ``None`` for staleness), else ``None``.  Pure read -- no
        retrain side effects.
        """
        info = self._engine.info()
        policy = self._policy
        if policy.max_extension_nodes is not None:
            limit = policy.max_extension_nodes * self._scale
            pressures = self._shard_pressures(info)
            hottest = max(range(len(pressures)), key=pressures.__getitem__)
            if pressures[hottest] >= limit:
                shard = hottest if "cluster" in info else None
                return ("extension_pressure", shard)
        if policy.max_staleness_queries is not None:
            staleness = (
                self._queries_served(info) - self._queries_at_promote
            )
            if staleness >= policy.max_staleness_queries * self._scale:
                return ("staleness", None)
        return None

    def tick(self):
        """Check, and retrain when the policy trips.

        Inline mode returns the finished :class:`RetrainRound` (or
        ``None`` when nothing tripped).  Background mode submits the
        refit to the shared kernel pool and returns its future;
        further ticks are no-ops until :meth:`join`.
        """
        if self._pending is not None:
            return None  # a refit is already in flight
        trigger = self.check()
        if trigger is None:
            return None
        if self._background:
            self._pending = shared_pool(1).submit(
                self._retrain, trigger
            )
            return self._pending
        return self._retrain(trigger)

    def join(self) -> RetrainRound | None:
        """Wait for a background refit and return its round."""
        if self._pending is None:
            return None
        try:
            return self._pending.result()
        finally:
            self._pending = None

    # ------------------------------------------------------------------
    def _retrain(self, trigger: tuple[str, int | None]) -> RetrainRound:
        reason, shard_id = trigger
        engine = self._engine
        plan_before = getattr(engine, "plan", None)
        promoted_nodes = int(engine.num_extension_nodes)
        try:
            result = engine.promote(self._config)
        except Exception as exc:
            # the round must not vanish: record the failed attempt
            # (background futures used to swallow it until join, and
            # the rounds history never learned a refit was tried) and
            # count it.  Within the policy's consecutive-failure
            # budget the exception is absorbed -- the trigger stays
            # tripped, so the next tick() retries deterministically
            # (no jitter: the engine rolled back, the telemetry that
            # tripped the trigger is unchanged).  At the bound, the
            # exception surfaces and the streak resets.
            self._metrics.retrain_failures.inc()
            failed = RetrainRound(
                trigger=reason,
                shard_id=shard_id,
                extension_nodes=promoted_nodes,
                g1_first=float("nan"),
                g1_final=float("nan"),
                g1_gain=float("nan"),
                outer_iterations=0,
                rebalanced=False,
                backed_off=False,
                error=f"{type(exc).__name__}: {exc}",
            )
            self.rounds.append(failed)
            self._consecutive_failures += 1
            if (
                self._consecutive_failures
                >= self._policy.max_consecutive_failures
            ):
                self._consecutive_failures = 0
                raise
            return failed
        self._consecutive_failures = 0
        plan_after = getattr(engine, "plan", None)
        g1 = result.history.g1_series()
        g1_first = float(g1[0])
        g1_final = float(g1[-1])
        gain = g1_final - g1_first
        backed_off = gain < self._policy.min_g1_gain
        if backed_off:
            self._scale *= self._policy.backoff_factor
        else:
            self._scale = 1.0
        self._queries_at_promote = self._queries_served(engine.info())
        round_ = RetrainRound(
            trigger=reason,
            shard_id=shard_id,
            extension_nodes=promoted_nodes,
            g1_first=g1_first,
            g1_final=g1_final,
            g1_gain=gain,
            outer_iterations=int(
                result.history.records[-1].outer_iteration
            ),
            rebalanced=(
                plan_after is not None and plan_after != plan_before
            ),
            backed_off=backed_off,
        )
        self.rounds.append(round_)
        self._metrics.retrain_rounds.inc()
        if backed_off:
            self._metrics.retrain_backoffs.inc()
        self._metrics.retrain_scale.set(self._scale)
        self._metrics.retrain_last_gain.set(gain)
        return round_
