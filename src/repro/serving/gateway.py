"""The asyncio HTTP gateway: concurrency in, micro-batches out.

Serving a HIN model to many concurrent callers is a traffic-shaping
problem: the engine's cheapest unit of work is a *batch* (one blocked
``score_many`` fold-in, one blocked ``similar_many`` scan), so the
gateway's whole job is turning request concurrency into batch size.
Incoming items accumulate in a :class:`MicroBatcher` until either the
**size trigger** (``max_batch`` items -- flush immediately) or the
**time trigger** (``batch_window`` seconds after the first item of a
batch) fires; the flush groups the batch -- all score items into one
cluster ``score_many``, similarity items by ``(k, metric, type)`` into
``similar_many`` calls -- and resolves each request's futures.

Determinism: every engine call the gateway makes runs on a
**single-thread executor**, so concurrent HTTP load can never
interleave two engine operations (parallelism lives *inside* a batch,
in the router's per-shard scatter and the workers' kernels).  Batched
answers are bit-identical to unbatched ones by the engine's per-row
convergence contract, and JSON round-trips Python floats exactly
(shortest-repr), so a response body carries the same 64 bits the
in-process reference returns -- pinned in ``tests/test_gateway.py``.

Admission control: a bounded queue (``max_queue`` items pending or in
flight).  A request that would overflow it is rejected with **429**
before any work is queued; during a drain new work gets **503** while
everything already admitted completes (``drain()`` flushes the open
batch and awaits in-flight executions).  Shard failures under a
process transport degrade, not fail: ``score_many`` runs in partial
mode, so queries owned by a dead worker come back as typed degraded
markers (HTTP 200 with per-item ``{"degraded": ...}`` objects) while
every healthy shard's rows are returned bit-identical.

Endpoints::

    POST /score    {"queries": [{"object_type": ..., ...}, ...]}
    POST /similar  {"nodes": [...], "k": 10, "metric": "cosine",
                    "object_type": null}
    GET  /healthz  process liveness (always 200 while serving)
    GET  /readyz   200 only when every shard answers info()
    GET  /metrics  Prometheus text: cluster aggregate + gateway

The server is stdlib-only (``asyncio.start_server`` + hand-rolled
HTTP/1.1 with keep-alive): no new dependencies ride in with it.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any

from repro.exceptions import ServingError
from repro.obs.export import render_prometheus
from repro.obs.metrics import MetricsRegistry, aggregate_snapshots
from repro.serving.engine import compile_transient_queries
from repro.serving.supervision import ShardFailure
from repro.serving.telemetry import GatewayMetrics
from repro.serving.transport import decode_node, encode_node

__all__ = ["Gateway", "GatewayBusy", "GatewayServer", "MicroBatcher"]

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class GatewayBusy(ServingError):
    """The admission queue is full; the caller saw a 429."""


class _Item:
    """One unit of admitted work: a score query or a similarity node."""

    __slots__ = ("kind", "payload", "future", "admitted")

    def __init__(self, kind: str, payload, future, admitted: float):
        self.kind = kind
        self.payload = payload
        self.future = future
        self.admitted = admitted


class MicroBatcher:
    """Accumulates admitted items and flushes them as engine batches.

    Flush triggers:

    * **size** -- the pending list reaches ``max_batch``: flush
      immediately (and cancel the armed timer).
    * **time** -- ``batch_window`` seconds after the *first* item of
      the current batch (``loop.call_later``); a timer that fires
      after a size flush already emptied the list is a no-op (the
      "empty window flush").
    * **drain** -- :meth:`flush_now` on shutdown.

    Execution always happens on the gateway's single-thread executor;
    one flush issues at most one ``score_many`` plus one
    ``similar_many`` per distinct ``(k, metric, type)`` group.
    """

    def __init__(
        self,
        engine,
        loop: asyncio.AbstractEventLoop,
        executor: ThreadPoolExecutor,
        batch_window: float,
        max_batch: int,
        max_queue: int,
        metrics: GatewayMetrics,
    ) -> None:
        if batch_window < 0:
            raise ServingError(
                f"batch_window must be >= 0, got {batch_window}"
            )
        if max_batch < 1:
            raise ServingError(
                f"max_batch must be >= 1, got {max_batch}"
            )
        if max_queue < 1:
            raise ServingError(
                f"max_queue must be >= 1, got {max_queue}"
            )
        self._engine = engine
        self._loop = loop
        self._executor = executor
        self._window = batch_window
        self._max_batch = max_batch
        self._max_queue = max_queue
        self._metrics = metrics
        self._pending: list[_Item] = []
        self._inflight = 0
        self._timer: asyncio.TimerHandle | None = None
        self._tasks: set[asyncio.Task] = set()

    # ------------------------------------------------------------------
    @property
    def load(self) -> int:
        """Items pending or in flight (the admission-control count)."""
        return len(self._pending) + self._inflight

    def admit(self, kind: str, payloads: list) -> list[asyncio.Future]:
        """Admit a request's items, all-or-nothing.

        Raises :class:`GatewayBusy` when the batch would push the
        queue past ``max_queue`` -- *before* anything is enqueued, so
        a rejected request leaves no partial work behind.
        """
        if self.load + len(payloads) > self._max_queue:
            raise GatewayBusy(
                f"admission queue is full "
                f"({self.load}/{self._max_queue} items in flight)"
            )
        now = time.monotonic()
        futures = []
        for payload in payloads:
            future = self._loop.create_future()
            self._pending.append(_Item(kind, payload, future, now))
            futures.append(future)
        self._metrics.queue_depth.set(self.load)
        if len(self._pending) >= self._max_batch:
            self._flush("size")
        elif self._timer is None and self._pending:
            self._timer = self._loop.call_later(
                self._window, self._flush, "time"
            )
        return futures

    def flush_now(self) -> None:
        """Drain trigger: flush whatever is pending immediately."""
        self._flush("drain")

    async def quiesce(self) -> None:
        """Await every in-flight batch execution (drain's second half)."""
        while self._tasks:
            await asyncio.gather(
                *list(self._tasks), return_exceptions=True
            )

    # ------------------------------------------------------------------
    def _flush(self, trigger: str) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if not self._pending:
            # a timer racing a size flush, or a drain with an empty
            # window: nothing to do
            return
        batch = self._pending
        self._pending = []
        self._metrics.batch_flushes.inc()
        self._metrics.flush_trigger(trigger).inc()
        self._metrics.batch_size.observe(len(batch))
        self._metrics.batch_wait_seconds.observe(
            time.monotonic() - batch[0].admitted
        )
        self._inflight += len(batch)
        self._metrics.queue_depth.set(self.load)
        task = self._loop.create_task(self._run(batch))
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    async def _run(self, batch: list[_Item]) -> None:
        try:
            results = await self._loop.run_in_executor(
                self._executor, self._execute, batch
            )
        except BaseException as exc:  # noqa: BLE001 - fan the error out
            for item in batch:
                if not item.future.done():
                    item.future.set_exception(
                        exc
                        if isinstance(exc, Exception)
                        else ServingError(str(exc))
                    )
        else:
            for item, result in zip(batch, results):
                if not item.future.done():
                    if isinstance(result, Exception):
                        item.future.set_exception(result)
                    else:
                        item.future.set_result(result)
        finally:
            self._inflight -= len(batch)
            self._metrics.queue_depth.set(self.load)

    def _execute(self, batch: list[_Item]) -> list:
        """Group and run one flushed batch (single-thread executor).

        Per-item results; an :class:`Exception` entry fails only its
        own item (e.g. one similarity group raising does not poison
        the score queries that shared the flush).
        """
        results: list[Any] = [None] * len(batch)
        scores = [
            (position, item)
            for position, item in enumerate(batch)
            if item.kind == "score"
        ]
        if scores:
            try:
                rows = self._engine.score_many(
                    [item.payload for _, item in scores],
                    partial=True,
                )
            except Exception as exc:  # noqa: BLE001
                for position, _ in scores:
                    results[position] = exc
            else:
                for (position, _), row in zip(scores, rows):
                    results[position] = row
        groups: dict[tuple, list[tuple[int, _Item]]] = {}
        for position, item in enumerate(batch):
            if item.kind != "similar":
                continue
            node, k, metric, object_type = item.payload
            groups.setdefault((k, metric, object_type), []).append(
                (position, item)
            )
        for (k, metric, object_type), members in groups.items():
            try:
                ranked = self._engine.similar_many(
                    [item.payload[0] for _, item in members],
                    k=k,
                    metric=metric,
                    object_type=object_type,
                )
            except Exception as exc:  # noqa: BLE001
                for position, _ in members:
                    results[position] = exc
            else:
                for (position, _), entry in zip(members, ranked):
                    results[position] = entry
        return results


class Gateway:
    """The HTTP server wrapping one (sharded) engine.

    Parameters
    ----------
    engine:
        A :class:`~repro.serving.router.ShardedEngine` (any transport
        backend).  The gateway serializes every call to it on one
        executor thread.
    host, port:
        Bind address; ``port=0`` picks a free port (see :attr:`port`
        after :meth:`start`).
    batch_window:
        Seconds the first item of a micro-batch waits for company
        before the time trigger flushes.
    max_batch:
        Size trigger: a batch reaching this many items flushes
        immediately.
    max_queue:
        Admission bound on items pending + in flight; overflow is
        rejected with 429.
    """

    def __init__(
        self,
        engine,
        host: str = "127.0.0.1",
        port: int = 0,
        batch_window: float = 0.005,
        max_batch: int = 64,
        max_queue: int = 1024,
    ) -> None:
        self._engine = engine
        self._host = host
        self._port = port
        self._batch_window = batch_window
        self._max_batch = max_batch
        self._max_queue = max_queue
        self.registry = MetricsRegistry()
        self._metrics = GatewayMetrics(self.registry)
        self._server: asyncio.AbstractServer | None = None
        self._bound_port: int | None = None
        self._clients: set[asyncio.Task] = set()
        self._batcher: MicroBatcher | None = None
        self._executor: ThreadPoolExecutor | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._draining = False

    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        if self._bound_port is None:
            raise ServingError("gateway is not started")
        return self._bound_port

    @property
    def url(self) -> str:
        return f"http://{self._host}:{self.port}"

    @property
    def draining(self) -> bool:
        return self._draining

    async def start(self) -> "Gateway":
        self._loop = asyncio.get_running_loop()
        # ONE engine thread: concurrent HTTP load becomes batching,
        # never interleaved engine calls (the determinism seam)
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-gateway-engine"
        )
        self._batcher = MicroBatcher(
            self._engine,
            self._loop,
            self._executor,
            self._batch_window,
            self._max_batch,
            self._max_queue,
            self._metrics,
        )
        self._server = await asyncio.start_server(
            self._client, self._host, self._port
        )
        self._bound_port = self._server.sockets[0].getsockname()[1]
        return self

    async def drain(self) -> None:
        """Graceful shutdown: refuse new work (503), flush the open
        micro-batch, await everything in flight, then close the
        listener.  Idempotent."""
        if self._draining:
            return
        self._draining = True
        self._metrics.draining.set(1)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._batcher is not None:
            self._batcher.flush_now()
            await self._batcher.quiesce()
        # give in-flight handlers a few loop cycles to write their
        # (now-resolved) responses, then cancel idle keep-alives
        for _ in range(3):
            await asyncio.sleep(0)
        for task in list(self._clients):
            task.cancel()
        if self._clients:
            await asyncio.gather(
                *list(self._clients), return_exceptions=True
            )
        if self._executor is not None:
            self._executor.shutdown(wait=True)

    async def serve_until(self, stop: asyncio.Event) -> None:
        """Serve until ``stop`` is set, then drain (the CLI's loop)."""
        await stop.wait()
        await self.drain()

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    async def _client(self, reader, writer) -> None:
        task = asyncio.current_task()
        self._clients.add(task)
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                request = line.decode("latin-1").strip()
                if not request:
                    continue
                parts = request.split()
                if len(parts) < 2:
                    break
                method, target = parts[0], parts[1]
                headers: dict[str, str] = {}
                while True:
                    header = await reader.readline()
                    if header in (b"\r\n", b"\n", b""):
                        break
                    name, _, value = header.decode(
                        "latin-1"
                    ).partition(":")
                    headers[name.strip().lower()] = value.strip()
                length = int(headers.get("content-length", 0))
                body = (
                    await reader.readexactly(length) if length else b""
                )
                status, ctype, payload = await self._dispatch(
                    method, target, body
                )
                keep = (
                    headers.get("connection", "keep-alive").lower()
                    != "close"
                )
                head = (
                    f"HTTP/1.1 {status} "
                    f"{_REASONS.get(status, 'OK')}\r\n"
                    f"Content-Type: {ctype}\r\n"
                    f"Content-Length: {len(payload)}\r\n"
                    f"Connection: "
                    f"{'keep-alive' if keep else 'close'}\r\n"
                    f"\r\n"
                )
                writer.write(head.encode("latin-1") + payload)
                await writer.drain()
                if not keep:
                    break
        except (
            asyncio.IncompleteReadError,
            ConnectionError,
            ValueError,
        ):
            pass
        finally:
            self._clients.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _dispatch(
        self, method: str, target: str, body: bytes
    ) -> tuple[int, str, bytes]:
        tick = time.perf_counter()
        self._metrics.requests.inc()
        try:
            response = await self._route(method, target, body)
        except GatewayBusy as exc:
            self._metrics.rejected.inc()
            response = _json_response(429, {"error": str(exc)})
        except ServingError as exc:
            response = _json_response(400, {"error": str(exc)})
        except Exception as exc:  # noqa: BLE001 - report, don't die
            response = _json_response(
                500,
                {"error": f"{type(exc).__name__}: {exc}"},
            )
        self._metrics.request_seconds.observe(
            time.perf_counter() - tick
        )
        return response

    async def _route(
        self, method: str, target: str, body: bytes
    ) -> tuple[int, str, bytes]:
        target = target.split("?", 1)[0]
        if target == "/healthz":
            return _json_response(
                200,
                {"status": "ok", "draining": self._draining},
            )
        if target == "/readyz":
            return await self._readyz()
        if target == "/metrics":
            return await self._metrics_page()
        if target == "/score":
            if method != "POST":
                return _json_response(
                    405, {"error": "POST required"}
                )
            return await self._score(body)
        if target == "/similar":
            if method != "POST":
                return _json_response(
                    405, {"error": "POST required"}
                )
            return await self._similar(body)
        return _json_response(
            404, {"error": f"unknown path {target!r}"}
        )

    # ------------------------------------------------------------------
    # endpoints
    # ------------------------------------------------------------------
    async def _readyz(self) -> tuple[int, str, bytes]:
        """Ready only when every shard answers ``info()`` -- over a
        process transport this is one RPC per worker, so a dead or
        wedged worker flips readiness off."""

        def probe() -> int:
            count = 0
            for handle in self._engine.shards:
                handle.info()
                count += 1
            return count

        if self._draining:
            return _json_response(
                503, {"ready": False, "reason": "draining"}
            )
        try:
            shards = await self._loop.run_in_executor(
                self._executor, probe
            )
        except Exception as exc:  # noqa: BLE001
            return _json_response(
                503, {"ready": False, "reason": str(exc)}
            )
        return _json_response(200, {"ready": True, "shards": shards})

    async def _metrics_page(self) -> tuple[int, str, bytes]:
        def render() -> str:
            merged = aggregate_snapshots(
                [
                    self._engine.metrics_snapshot(),
                    self.registry.snapshot(),
                ]
            )
            return render_prometheus(merged)

        text = await self._loop.run_in_executor(
            self._executor, render
        )
        return (
            200,
            "text/plain; version=0.0.4; charset=utf-8",
            text.encode("utf-8"),
        )

    async def _score(self, body: bytes) -> tuple[int, str, bytes]:
        request = _parse_json(body)
        queries = request.get("queries")
        if not isinstance(queries, list):
            raise ServingError(
                'the /score body must carry {"queries": [...]}'
            )
        queries = [_decode_query(query, index) for index, query in enumerate(queries)]
        # validate up front so one malformed request 400s alone
        # instead of poisoning the micro-batch it would share
        # (model-aware when the engine offers it)
        validate = getattr(self._engine, "validate_queries", None)
        if validate is not None:
            await self._loop.run_in_executor(
                self._executor, validate, queries
            )
        else:
            compile_transient_queries(queries)
        if self._draining:
            return _json_response(
                503, {"error": "gateway is draining"}
            )
        futures = self._batcher.admit("score", queries)
        rows = await asyncio.gather(*futures)
        results: list[Any] = []
        degraded = 0
        for row in rows:
            if isinstance(row, ShardFailure):
                degraded += 1
                results.append(
                    {
                        "degraded": True,
                        "shard": row.shard,
                        "error": row.error,
                    }
                )
            else:
                results.append([float(value) for value in row])
        return _json_response(
            200, {"results": results, "degraded": degraded}
        )

    async def _similar(self, body: bytes) -> tuple[int, str, bytes]:
        request = _parse_json(body)
        nodes = request.get("nodes")
        if not isinstance(nodes, list) or not nodes:
            raise ServingError(
                'the /similar body must carry {"nodes": [...]}'
            )
        k = int(request.get("k", 10))
        metric = str(request.get("metric", "cosine"))
        object_type = request.get("object_type")
        if self._draining:
            return _json_response(
                503, {"error": "gateway is draining"}
            )
        futures = self._batcher.admit(
            "similar",
            [
                (decode_node(node), k, metric, object_type)
                for node in nodes
            ],
        )
        ranked = await asyncio.gather(*futures)
        results = [
            [
                [encode_node(found), float(score)]
                for found, score in entry
            ]
            for entry in ranked
        ]
        return _json_response(200, {"results": results})


def _decode_query(query, index: int) -> dict:
    """JSON has no tuples: re-shape a wire query for the engine API.

    Link entries arrive as ``[relation, target(, weight)]`` arrays and
    target ids in the :func:`~repro.serving.transport.encode_node`
    codec (so tuple-keyed models survive the JSON hop)."""
    if not isinstance(query, dict):
        raise ServingError(
            f"query #{index}: expected a JSON object, got "
            f"{type(query).__name__}"
        )
    links = query.get("links")
    if links is None:
        return query
    if not isinstance(links, list):
        raise ServingError(
            f"query #{index}: links must be an array of "
            f"[relation, target(, weight)] entries"
        )
    reshaped = dict(query)
    reshaped["links"] = [
        (link[0], decode_node(link[1]), *link[2:])
        if isinstance(link, list) and len(link) >= 2
        else tuple(link)
        for link in links
    ]
    return reshaped


def _parse_json(body: bytes) -> dict:
    try:
        parsed = json.loads(body.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ServingError(f"invalid JSON body: {exc}") from None
    if not isinstance(parsed, dict):
        raise ServingError("the request body must be a JSON object")
    return parsed


def _json_response(
    status: int, payload: dict
) -> tuple[int, str, bytes]:
    return (
        status,
        "application/json",
        json.dumps(payload).encode("utf-8"),
    )


# ----------------------------------------------------------------------
# the synchronous harness (CLI + tests + benchmarks)
# ----------------------------------------------------------------------
class GatewayServer:
    """A gateway running on a background event-loop thread.

    The synchronous face of :class:`Gateway` for callers that are not
    themselves async: the CLI's ``serve`` command, the test suite, and
    the benchmark harness.  ``launch`` returns once the listener is
    bound; :meth:`drain` performs the graceful shutdown from any
    thread.
    """

    def __init__(self, gateway: Gateway) -> None:
        self.gateway = gateway
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._stop: asyncio.Event | None = None
        self._done = threading.Event()

    @classmethod
    def launch(cls, engine, **kwargs: Any) -> "GatewayServer":
        server = cls(Gateway(engine, **kwargs))
        ready = threading.Event()
        failure: list[BaseException] = []

        def run() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            server._loop = loop
            try:
                loop.run_until_complete(server._main(ready))
            except BaseException as exc:  # noqa: BLE001
                failure.append(exc)
                ready.set()
            finally:
                loop.close()
                server._done.set()

        thread = threading.Thread(
            target=run, name="repro-gateway", daemon=True
        )
        server._thread = thread
        thread.start()
        ready.wait()
        if failure:
            raise ServingError(
                f"gateway failed to start: {failure[0]}"
            )
        return server

    async def _main(self, ready: threading.Event) -> None:
        self._stop = asyncio.Event()
        await self.gateway.start()
        ready.set()
        await self.gateway.serve_until(self._stop)

    # ------------------------------------------------------------------
    @property
    def url(self) -> str:
        return self.gateway.url

    @property
    def port(self) -> int:
        return self.gateway.port

    def request_stop(self) -> None:
        """Signal the drain without blocking (signal-handler safe)."""
        if self._loop is not None and self._stop is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop.set)
            except RuntimeError:
                pass  # loop already closed: the server is down

    def drain(self, timeout: float = 30.0) -> None:
        """Graceful shutdown: drain in-flight work, stop the loop."""
        self.request_stop()
        self._done.wait(timeout)
        if self._thread is not None:
            self._thread.join(timeout)

    close = drain

    def __enter__(self) -> "GatewayServer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.drain()
