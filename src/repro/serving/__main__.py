"""Command-line serving front end: ``python -m repro.serving``.

Subcommands against a saved model artifact:

* ``info ARTIFACT`` -- print the persisted model's summary (or the full
  engine snapshot with ``--json``; ``--mmap`` serves a schema-v3
  bundle directory off lazily-paged memory maps and the snapshot's
  ``memory`` section reports mapped vs resident bytes).
* ``score ARTIFACT --type TYPE [--link REL=TARGET[:WEIGHT]] ...``
  -- fold one hypothetical node in and print its posterior membership
  and hard cluster label.  ``score ARTIFACT --batch FILE`` scores many
  queries through the coalesced ``score_many`` batch path instead:
  ``FILE`` holds a JSON array (or JSON-lines stream) of query objects
  ``{"object_type": ..., "links": [[REL, TARGET, WEIGHT?], ...],
  "text": {...}, "numeric": {...}}``.
* ``similar ARTIFACT --node ID [-k N] [--metric M] [--type TYPE]
  [--shards N]`` -- the top-k most similar served nodes by fitted
  membership (blocked partial selection; ``--metric`` is ``cosine``,
  ``euclidean``, or ``cross_entropy``).  ``--shards N > 1`` serves
  the query through a scatter-gather cluster -- the ranking is
  bit-identical to the singleton's.
* ``suggest-links ARTIFACT --node ID --relation REL [-k N]
  [--metric M] [--shards N]`` -- rank link candidates for one node:
  top-k nodes of the relation's target type, with the node itself and
  its already-linked targets excluded.
* ``shard-plan ARTIFACT --shards N [--block-size B]`` -- print the
  :class:`~repro.serving.cluster.ShardPlan` a cluster of ``N`` engines
  would pin this artifact's index space with (rows and blocks per
  shard, plus per-shard link load when the artifact embeds training
  edges) -- review it, then hand it to
  :class:`~repro.serving.router.ShardedEngine`.
* ``metrics ARTIFACT [--shards N] [--batch FILE]`` -- export the
  engine's metrics registry in Prometheus text format (``--json`` for
  the stable JSON snapshot).  With ``--batch`` the queries are scored
  first, so latency histograms and cache counters carry real traffic;
  with ``--shards N > 1`` the model is served by a cluster and the
  export is the aggregated cluster snapshot.
* ``trace ARTIFACT --batch FILE [--shards N] [--jsonl PATH]`` -- score
  a batch with tracing enabled and print the recorded span trees
  (``score_many > shard[i].foldin`` under a cluster); ``--jsonl``
  additionally exports the traces as JSON lines.
* ``serve ARTIFACT --shards N --port P [--mmap] [--batch-window MS]
  [--max-batch Q] [--max-queue Q] [--workers-inproc]`` -- serve the
  model over HTTP: a sharded cluster (shard workers in separate
  processes by default; ``--workers-inproc`` keeps them as threads in
  this process) behind the micro-batching asyncio gateway.  Prints
  ``READY http://HOST:PORT`` once the listener is bound; SIGTERM or
  SIGINT triggers a graceful drain (in-flight batches complete, new
  work gets 503) before exit.  Endpoints: ``POST /score``,
  ``POST /similar``, ``GET /healthz``, ``GET /readyz``,
  ``GET /metrics``.
* ``chaos ARTIFACT --batch FILE [--shards N] [--fail-shard K]
  [--jsonl PATH]`` -- a scripted kill-and-recover drill: serve the
  batch through a supervised cluster while a deterministic
  :mod:`repro.faults` plan kills shard ``K``, assert the degraded
  partial results mark exactly that shard's queries (healthy rows
  bit-identical to a singleton engine), ``heal()``, and assert strict
  scoring is bit-identical again.  ``--jsonl`` writes the drill's
  event trail (phases, injected faults, supervision metrics) as JSON
  lines; a violated invariant exits nonzero.

Node ids on the command line are always strings; models whose ids are
other scalar types need the Python API.  Link weights ride after a
trailing ``:`` (``REL=TARGET:2.0``); a target id whose own suffix after
a ``:`` parses as a number is ambiguous here -- score such models
through the Python API instead.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections.abc import Sequence
from pathlib import Path

from repro.exceptions import ReproError, ServingError
from repro.obs.export import render_json, render_prometheus
from repro.obs.observability import Observability
from repro.serving.artifact import ModelArtifact
from repro.serving.cluster import ShardPlan
from repro.serving.engine import InferenceEngine
from repro.serving.router import ShardedEngine


def _parse_link(raw: str) -> tuple[str, str, float]:
    """``REL=TARGET[:WEIGHT]`` -> (relation, target, weight)."""
    relation, separator, rest = raw.partition("=")
    if not separator or not relation or not rest:
        raise argparse.ArgumentTypeError(
            f"link {raw!r} must look like REL=TARGET[:WEIGHT]"
        )
    target, separator, weight = rest.rpartition(":")
    if not separator:
        return relation, rest, 1.0
    try:
        return relation, target, float(weight)
    except ValueError:
        # the ':' belonged to the target id itself
        return relation, rest, 1.0


def _parse_text(raw: str) -> tuple[str, list[str]]:
    """``ATTR=tok1,tok2,...`` -> (attribute, tokens)."""
    attribute, separator, rest = raw.partition("=")
    if not separator or not attribute or not rest:
        raise argparse.ArgumentTypeError(
            f"text {raw!r} must look like ATTR=tok1,tok2,..."
        )
    return attribute, [token for token in rest.split(",") if token]


def _parse_numeric(raw: str) -> tuple[str, list[float]]:
    """``ATTR=v1,v2,...`` -> (attribute, values)."""
    attribute, separator, rest = raw.partition("=")
    if not separator or not attribute or not rest:
        raise argparse.ArgumentTypeError(
            f"numeric {raw!r} must look like ATTR=v1,v2,..."
        )
    try:
        values = [float(piece) for piece in rest.split(",") if piece]
    except ValueError as exc:
        raise argparse.ArgumentTypeError(
            f"numeric {raw!r}: {exc}"
        ) from exc
    return attribute, values


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serving",
        description="Serve cluster-membership queries from a saved "
        "GenClus model artifact.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    info = commands.add_parser(
        "info", help="describe a saved model artifact"
    )
    info.add_argument("artifact", help="path to the artifact bundle")
    info.add_argument(
        "--json",
        action="store_true",
        help="emit the engine info() snapshot as JSON",
    )
    info.add_argument(
        "--mmap",
        action="store_true",
        help="memory-map a schema-v3 bundle directory instead of "
        "loading it eagerly",
    )

    score = commands.add_parser(
        "score", help="fold a hypothetical node in and print its scores"
    )
    score.add_argument("artifact", help="path to the artifact bundle")
    score.add_argument(
        "--mmap",
        action="store_true",
        help="memory-map a schema-v3 bundle directory (cold start "
        "touches only the pages the queries read)",
    )
    score.add_argument(
        "--type",
        dest="object_type",
        help="object type of the scored node (single-query mode)",
    )
    score.add_argument(
        "--batch",
        metavar="FILE",
        help="score a file of query objects (JSON array or JSON "
        "lines) through the coalesced score_many batch path",
    )
    score.add_argument(
        "--link",
        action="append",
        default=[],
        type=_parse_link,
        metavar="REL=TARGET[:WEIGHT]",
        help="out-link into the fitted network (repeatable)",
    )
    score.add_argument(
        "--text",
        action="append",
        default=[],
        type=_parse_text,
        metavar="ATTR=tok1,tok2",
        help="text observations for one attribute (repeatable)",
    )
    score.add_argument(
        "--numeric",
        action="append",
        default=[],
        type=_parse_numeric,
        metavar="ATTR=v1,v2",
        help="numeric observations for one attribute (repeatable)",
    )
    score.add_argument(
        "--json", action="store_true", help="emit JSON instead of text"
    )

    def add_similarity_arguments(command, with_relation: bool) -> None:
        command.add_argument(
            "artifact", help="path to the artifact bundle"
        )
        command.add_argument(
            "--node",
            required=True,
            help="id of the served query node",
        )
        if with_relation:
            command.add_argument(
                "--relation",
                required=True,
                help="the declared relation to suggest targets for",
            )
        command.add_argument(
            "-k",
            type=int,
            default=10,
            help="results to return (default: 10)",
        )
        command.add_argument(
            "--metric",
            default="cosine",
            choices=["cosine", "euclidean", "cross_entropy"],
            help="membership similarity (default: cosine)",
        )
        if not with_relation:
            command.add_argument(
                "--type",
                dest="object_type",
                default=None,
                help="restrict candidates to this object type "
                "(default: the query node's own type)",
            )
        command.add_argument(
            "--shards",
            type=int,
            default=1,
            help="serve through a cluster of N shard engines "
            "(default: 1, a singleton)",
        )
        command.add_argument(
            "--mmap",
            action="store_true",
            help="memory-map a schema-v3 bundle directory",
        )
        command.add_argument(
            "--json",
            action="store_true",
            help="emit JSON instead of text",
        )

    similar = commands.add_parser(
        "similar",
        help="rank the served nodes most similar to one node",
    )
    add_similarity_arguments(similar, with_relation=False)

    suggest = commands.add_parser(
        "suggest-links",
        help="rank link candidates for one node under a relation",
    )
    add_similarity_arguments(suggest, with_relation=True)

    shard_plan = commands.add_parser(
        "shard-plan",
        help="propose a balanced shard plan for a serving cluster",
    )
    shard_plan.add_argument("artifact", help="path to the .npz bundle")
    shard_plan.add_argument(
        "--shards",
        type=int,
        required=True,
        help="number of shard engines in the cluster",
    )
    shard_plan.add_argument(
        "--block-size",
        type=int,
        default=None,
        help="rows per block (default: the cache-sized kernel block)",
    )
    shard_plan.add_argument(
        "--json",
        action="store_true",
        help="emit the plan as JSON",
    )

    metrics = commands.add_parser(
        "metrics",
        help="export the serving metrics registry "
        "(Prometheus text format by default)",
    )
    metrics.add_argument("artifact", help="path to the artifact bundle")
    metrics.add_argument(
        "--mmap",
        action="store_true",
        help="memory-map a schema-v3 bundle directory",
    )
    metrics.add_argument(
        "--shards",
        type=int,
        default=1,
        help="serve through a cluster of N shard engines and export "
        "the aggregated cluster snapshot (default: 1, a singleton)",
    )
    metrics.add_argument(
        "--batch",
        metavar="FILE",
        help="score this query file first, so counters and latency "
        "histograms carry real traffic",
    )
    metrics.add_argument(
        "--json",
        action="store_true",
        help="emit the stable JSON snapshot instead of Prometheus "
        "text",
    )

    trace = commands.add_parser(
        "trace",
        help="score a batch with tracing on and print the span trees",
    )
    trace.add_argument("artifact", help="path to the .npz bundle")
    trace.add_argument(
        "--batch",
        metavar="FILE",
        required=True,
        help="query file to score under tracing (JSON array or JSON "
        "lines)",
    )
    trace.add_argument(
        "--shards",
        type=int,
        default=1,
        help="serve through a cluster of N shard engines (default: "
        "1, a singleton)",
    )
    trace.add_argument(
        "--jsonl",
        metavar="PATH",
        help="also export the recorded traces as JSON lines",
    )

    serve = commands.add_parser(
        "serve",
        help="serve the model over HTTP through the micro-batching "
        "gateway",
    )
    serve.add_argument("artifact", help="path to the artifact bundle")
    serve.add_argument(
        "--shards",
        type=int,
        default=2,
        help="shard workers behind the gateway (default: 2)",
    )
    serve.add_argument(
        "--host",
        default="127.0.0.1",
        help="bind address (default: 127.0.0.1)",
    )
    serve.add_argument(
        "--port",
        type=int,
        default=8080,
        help="bind port; 0 picks a free one (default: 8080)",
    )
    serve.add_argument(
        "--mmap",
        action="store_true",
        help="memory-map the schema-v3 bundle in every worker "
        "(the frozen base is shared through the OS page cache)",
    )
    serve.add_argument(
        "--batch-window",
        type=float,
        default=5.0,
        metavar="MS",
        help="micro-batch window in milliseconds (default: 5)",
    )
    serve.add_argument(
        "--max-batch",
        type=int,
        default=64,
        help="size trigger: flush a batch at this many items "
        "(default: 64)",
    )
    serve.add_argument(
        "--max-queue",
        type=int,
        default=1024,
        help="admission bound on items pending + in flight; overflow "
        "is rejected with 429 (default: 1024)",
    )
    serve.add_argument(
        "--workers-inproc",
        action="store_true",
        help="run shard workers as threads in this process instead "
        "of separate worker processes",
    )

    chaos = commands.add_parser(
        "chaos",
        help="run a scripted kill-and-recover drill against a "
        "supervised cluster",
    )
    chaos.add_argument("artifact", help="path to the .npz bundle")
    chaos.add_argument(
        "--batch",
        metavar="FILE",
        required=True,
        help="query file served through the drill (JSON array or "
        "JSON lines)",
    )
    chaos.add_argument(
        "--shards",
        type=int,
        default=3,
        help="cluster width for the drill (default: 3)",
    )
    chaos.add_argument(
        "--fail-shard",
        type=int,
        default=1,
        help="the shard the fault plan kills (default: 1)",
    )
    chaos.add_argument(
        "--seed",
        type=int,
        default=0,
        help="fault plan seed (default: 0)",
    )
    chaos.add_argument(
        "--jsonl",
        metavar="PATH",
        help="write the drill's event trail as JSON lines",
    )
    return parser


def _build_engine(
    artifact: str,
    shards: int,
    obs: Observability,
    mmap: bool = False,
):
    """A singleton engine, or a sharded cluster when ``shards > 1``."""
    if shards < 1:
        raise ServingError(f"--shards must be >= 1, got {shards}")
    if shards == 1:
        return InferenceEngine.load(artifact, mmap=mmap, obs=obs)
    return ShardedEngine.load(
        artifact, n_shards=shards, mmap=mmap, obs=obs
    )


def _run_metrics(args: argparse.Namespace) -> int:
    engine = _build_engine(
        args.artifact, args.shards, Observability(), mmap=args.mmap
    )
    if args.batch is not None:
        engine.score_many(_load_batch(args.batch))
    snapshot = engine.metrics_snapshot()
    if args.json:
        print(render_json(snapshot))
    else:
        sys.stdout.write(render_prometheus(snapshot))
    return 0


def _run_trace(args: argparse.Namespace) -> int:
    obs = Observability(trace=True)
    engine = _build_engine(args.artifact, args.shards, obs)
    engine.score_many(_load_batch(args.batch))
    traces = obs.tracer.traces()
    for root in traces:
        print(root.describe())
    if args.jsonl is not None:
        count = obs.tracer.export_jsonl(args.jsonl)
        print(
            f"wrote {count} trace(s) to {args.jsonl}",
            file=sys.stderr,
        )
    return 0


def _run_chaos(args: argparse.Namespace) -> int:
    """Scripted kill-and-recover drill; nonzero exit on any violation."""
    import numpy as np

    from repro.faults import FaultPlan, resolve_faults
    from repro.obs.metrics import series_value
    from repro.serving.supervision import ShardFailure, SupervisionPolicy

    if args.shards < 2:
        raise ServingError(
            f"the chaos drill needs a cluster: --shards must be >= 2, "
            f"got {args.shards}"
        )
    if not 0 <= args.fail_shard < args.shards:
        raise ServingError(
            f"--fail-shard must be in [0, {args.shards}), got "
            f"{args.fail_shard}"
        )
    queries = _load_batch(args.batch)
    if not queries:
        raise ServingError(f"batch file {args.batch!r} holds no queries")

    trail: list[dict] = []

    def record(phase: str, **detail) -> None:
        trail.append({"phase": phase, **detail})

    violations: list[str] = []

    # the ground truth: the same batch through a singleton engine
    reference = InferenceEngine.load(args.artifact).score_many(queries)

    # threshold=2 with one retry: the first scatter burns both fault
    # firings, trips the breaker, and leaves the plan exhausted so the
    # post-heal strict pass runs clean
    policy = SupervisionPolicy(
        max_retries=1, backoff_base=0.0, breaker_threshold=2
    )
    plan = FaultPlan(seed=args.seed).fail(
        "shard.foldin", times=2, shard=args.fail_shard,
        message="chaos drill",
    )
    injector = resolve_faults(plan)
    cluster = ShardedEngine.load(
        args.artifact,
        n_shards=args.shards,
        supervision=policy,
        faults=injector,
    )
    record(
        "inject",
        site="shard.foldin",
        shard=args.fail_shard,
        seed=args.seed,
        policy={
            "max_retries": policy.max_retries,
            "breaker_threshold": policy.breaker_threshold,
        },
    )

    # phase 1: degraded partial scoring while the shard is down
    degraded = cluster.score_many(queries, partial=True)
    markers = [
        row for row in degraded if isinstance(row, ShardFailure)
    ]
    if not markers:
        violations.append(
            f"no query routed to shard {args.fail_shard}: the drill "
            f"killed a shard nobody asked for (try another "
            f"--fail-shard)"
        )
    for marker in markers:
        if marker.shard != args.fail_shard:
            violations.append(
                f"healthy shard {marker.shard} degraded: {marker.error}"
            )
    for position, (row, want) in enumerate(zip(degraded, reference)):
        if isinstance(row, ShardFailure):
            continue
        if not np.array_equal(row, want):
            violations.append(
                f"degraded query #{position} diverged from the "
                f"singleton reference"
            )
    record(
        "degrade",
        queries=len(queries),
        degraded=len(markers),
        breakers=cluster.supervisor.states(),
        injected=injector.events(),
    )

    # phase 2: heal the broken shard (rebuild + breaker reset)
    healed = cluster.heal()
    states = cluster.supervisor.states()
    if any(state != "closed" for state in states):
        violations.append(f"breakers not closed after heal: {states}")
    record("heal", shards=list(healed), breakers=states)

    # phase 3: strict scoring must be bit-identical again
    recovered = cluster.score_many(queries)
    restored = all(
        np.array_equal(row, want)
        for row, want in zip(recovered, reference)
    )
    if not restored:
        violations.append(
            "post-heal strict scoring is not bit-identical to the "
            "singleton reference"
        )
    snapshot = cluster.metrics_snapshot()
    record(
        "verify",
        bit_identical=restored,
        retries=series_value(snapshot, "repro_shard_retries_total"),
        breaker_opens=series_value(
            snapshot, "repro_breaker_opens_total"
        ),
        rebuilds=series_value(snapshot, "repro_shard_rebuilds_total"),
        degraded_queries=series_value(
            snapshot, "repro_degraded_queries_total"
        ),
    )
    record("result", ok=not violations, violations=violations)

    if args.jsonl is not None:
        with open(args.jsonl, "w", encoding="utf-8") as sink:
            for event in trail:
                sink.write(json.dumps(event, sort_keys=True) + "\n")
        print(
            f"wrote {len(trail)} drill event(s) to {args.jsonl}",
            file=sys.stderr,
        )
    for event in trail:
        print(json.dumps(event, sort_keys=True))
    if violations:
        for violation in violations:
            print(f"drill violation: {violation}", file=sys.stderr)
        return 1
    return 0


def _run_serve(args: argparse.Namespace) -> int:
    """Serve over HTTP until SIGTERM/SIGINT, then drain gracefully."""
    import signal
    import threading

    from repro.serving.gateway import GatewayServer

    if args.shards < 1:
        raise ServingError(f"--shards must be >= 1, got {args.shards}")
    engine = ShardedEngine.load(
        args.artifact,
        n_shards=args.shards,
        mmap=args.mmap,
        transport=None if args.workers_inproc else "process",
    )
    stop = threading.Event()
    try:
        server = GatewayServer.launch(
            engine,
            host=args.host,
            port=args.port,
            batch_window=args.batch_window / 1000.0,
            max_batch=args.max_batch,
            max_queue=args.max_queue,
        )
        try:
            for signum in (signal.SIGTERM, signal.SIGINT):
                signal.signal(
                    signum, lambda *_: (stop.set(), server.request_stop())
                )
            backend = "inproc" if args.workers_inproc else "process"
            print(f"READY {server.url}", flush=True)
            print(
                f"serving {args.artifact} with {args.shards} "
                f"{backend} shard worker(s); SIGTERM drains",
                file=sys.stderr,
            )
            stop.wait()
            print("draining...", file=sys.stderr)
        finally:
            server.drain()
    finally:
        engine.close()
    print("drained; bye", file=sys.stderr)
    return 0


def _print_ranking(
    ranking: list[tuple[object, float]], as_json: bool
) -> None:
    if as_json:
        print(
            json.dumps(
                [
                    {"node": str(node), "score": float(score)}
                    for node, score in ranking
                ]
            )
        )
        return
    if not ranking:
        print("no candidates")
        return
    for rank, (node, score) in enumerate(ranking, start=1):
        print(f"{rank:>3}. {node}  {score:.6f}")


def _run_similar(args: argparse.Namespace) -> int:
    engine = _build_engine(
        args.artifact, args.shards, Observability(), mmap=args.mmap
    )
    ranking = engine.similar(
        args.node,
        k=args.k,
        metric=args.metric,
        object_type=args.object_type,
    )
    _print_ranking(ranking, args.json)
    return 0


def _run_suggest_links(args: argparse.Namespace) -> int:
    engine = _build_engine(
        args.artifact, args.shards, Observability(), mmap=args.mmap
    )
    ranking = engine.suggest_links(
        args.node, args.relation, k=args.k, metric=args.metric
    )
    _print_ranking(ranking, args.json)
    return 0


def _run_info(args: argparse.Namespace) -> int:
    engine = InferenceEngine.load(args.artifact, mmap=args.mmap)
    if args.json:
        print(json.dumps(engine.info(), indent=2, sort_keys=True))
    else:
        print(engine.artifact.summary())
    return 0


def _load_batch(path: str) -> list[dict]:
    """Parse a batch file: a JSON array, or one JSON object per line."""
    raw = Path(path).read_text(encoding="utf-8").strip()
    if not raw:
        return []
    if raw.startswith("["):
        queries = json.loads(raw)
        if not isinstance(queries, list):  # pragma: no cover - guard
            raise ServingError(
                f"batch file {path!r} must hold a JSON array"
            )
    else:
        queries = [
            json.loads(line)
            for line in raw.splitlines()
            if line.strip()
        ]
    # JSON has no tuples: re-shape link entries for the query API
    for position, query in enumerate(queries):
        if not isinstance(query, dict):
            raise ServingError(
                f"query #{position}: expected a JSON object, got "
                f"{type(query).__name__}"
            )
        links = query.get("links")
        if links is not None:
            if not isinstance(links, list):
                raise ServingError(
                    f"query #{position}: links must be an array of "
                    f"[relation, target(, weight)] entries"
                )
            query["links"] = [tuple(link) for link in links]
    return queries


def _run_score_batch(args: argparse.Namespace) -> int:
    engine = InferenceEngine.load(args.artifact, mmap=args.mmap)
    queries = _load_batch(args.batch)
    memberships = engine.score_many(queries)
    rows = [
        {
            "cluster": int(membership.argmax()),
            "membership": [float(p) for p in membership],
        }
        for membership in memberships
    ]
    if args.json:
        print(json.dumps(rows))
    else:
        for position, row in enumerate(rows):
            rendered = ", ".join(
                f"{p:.4f}" for p in row["membership"]
            )
            print(
                f"query #{position}: cluster {row['cluster']}  "
                f"membership [{rendered}]"
            )
    return 0


def _run_score(args: argparse.Namespace) -> int:
    if args.batch is not None:
        if args.object_type or args.link or args.text or args.numeric:
            raise ServingError(
                "--batch scores a query file; it cannot be combined "
                "with --type/--link/--text/--numeric"
            )
        return _run_score_batch(args)
    if not args.object_type:
        raise ServingError(
            "score needs either --type (single query) or --batch FILE"
        )
    engine = InferenceEngine.load(args.artifact, mmap=args.mmap)
    text: dict[str, list[str]] = {}
    for attribute, tokens in args.text:
        text.setdefault(attribute, []).extend(tokens)
    numeric: dict[str, list[float]] = {}
    for attribute, values in args.numeric:
        numeric.setdefault(attribute, []).extend(values)
    membership = engine.query(
        args.object_type,
        links=args.link,
        text=text,
        numeric=numeric,
    )
    cluster = int(membership.argmax())
    if args.json:
        print(
            json.dumps(
                {
                    "cluster": cluster,
                    "membership": [float(p) for p in membership],
                }
            )
        )
    else:
        rendered = ", ".join(f"{p:.4f}" for p in membership)
        print(f"cluster: {cluster}")
        print(f"membership: [{rendered}]")
    return 0


def _run_shard_plan(args: argparse.Namespace) -> int:
    state = ModelArtifact.load(args.artifact).to_state()
    # link views make the per-shard load column possible; serve-only
    # bundles (schema v1) still get the row/block split
    state.hydrate()
    plan = ShardPlan.from_state(state, args.shards, args.block_size)
    summary = plan.describe(state)
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
        return 0
    print(
        f"shard plan: {summary['n_shards']} shard(s) over "
        f"{summary['num_rows']} rows "
        f"({summary['num_blocks']} blocks x {summary['block_rows']} "
        f"rows)"
    )
    for entry in summary["shards"]:
        start, stop = entry["rows"]
        first, last = entry["blocks"]
        line = (
            f"  shard {entry['shard']}: rows [{start}, {stop})  "
            f"blocks [{first}, {last})  {entry['num_rows']} rows"
        )
        if "total_links" in entry:
            line += f"  {entry['total_links']} out-links"
        print(line)
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "info":
            return _run_info(args)
        if args.command == "shard-plan":
            return _run_shard_plan(args)
        if args.command == "metrics":
            return _run_metrics(args)
        if args.command == "trace":
            return _run_trace(args)
        if args.command == "chaos":
            return _run_chaos(args)
        if args.command == "serve":
            return _run_serve(args)
        if args.command == "similar":
            return _run_similar(args)
        if args.command == "suggest-links":
            return _run_suggest_links(args)
        return _run_score(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # output piped into a closed reader (e.g. `info ... | head`)
        sys.stderr.close()
        return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    sys.exit(main())
