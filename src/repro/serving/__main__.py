"""Command-line serving front end: ``python -m repro.serving``.

Two subcommands against a saved model artifact:

* ``info ARTIFACT`` -- print the persisted model's summary (or the full
  engine snapshot with ``--json``).
* ``score ARTIFACT --type TYPE [--link REL=TARGET[:WEIGHT]] ...``
  -- fold one hypothetical node in and print its posterior membership
  and hard cluster label.

Node ids on the command line are always strings; models whose ids are
other scalar types need the Python API.  Link weights ride after a
trailing ``:`` (``REL=TARGET:2.0``); a target id whose own suffix after
a ``:`` parses as a number is ambiguous here -- score such models
through the Python API instead.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections.abc import Sequence

from repro.exceptions import ReproError
from repro.serving.engine import InferenceEngine


def _parse_link(raw: str) -> tuple[str, str, float]:
    """``REL=TARGET[:WEIGHT]`` -> (relation, target, weight)."""
    relation, separator, rest = raw.partition("=")
    if not separator or not relation or not rest:
        raise argparse.ArgumentTypeError(
            f"link {raw!r} must look like REL=TARGET[:WEIGHT]"
        )
    target, separator, weight = rest.rpartition(":")
    if not separator:
        return relation, rest, 1.0
    try:
        return relation, target, float(weight)
    except ValueError:
        # the ':' belonged to the target id itself
        return relation, rest, 1.0


def _parse_text(raw: str) -> tuple[str, list[str]]:
    """``ATTR=tok1,tok2,...`` -> (attribute, tokens)."""
    attribute, separator, rest = raw.partition("=")
    if not separator or not attribute or not rest:
        raise argparse.ArgumentTypeError(
            f"text {raw!r} must look like ATTR=tok1,tok2,..."
        )
    return attribute, [token for token in rest.split(",") if token]


def _parse_numeric(raw: str) -> tuple[str, list[float]]:
    """``ATTR=v1,v2,...`` -> (attribute, values)."""
    attribute, separator, rest = raw.partition("=")
    if not separator or not attribute or not rest:
        raise argparse.ArgumentTypeError(
            f"numeric {raw!r} must look like ATTR=v1,v2,..."
        )
    try:
        values = [float(piece) for piece in rest.split(",") if piece]
    except ValueError as exc:
        raise argparse.ArgumentTypeError(
            f"numeric {raw!r}: {exc}"
        ) from exc
    return attribute, values


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serving",
        description="Serve cluster-membership queries from a saved "
        "GenClus model artifact.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    info = commands.add_parser(
        "info", help="describe a saved model artifact"
    )
    info.add_argument("artifact", help="path to the .npz bundle")
    info.add_argument(
        "--json",
        action="store_true",
        help="emit the engine info() snapshot as JSON",
    )

    score = commands.add_parser(
        "score", help="fold a hypothetical node in and print its scores"
    )
    score.add_argument("artifact", help="path to the .npz bundle")
    score.add_argument(
        "--type",
        required=True,
        dest="object_type",
        help="object type of the scored node",
    )
    score.add_argument(
        "--link",
        action="append",
        default=[],
        type=_parse_link,
        metavar="REL=TARGET[:WEIGHT]",
        help="out-link into the fitted network (repeatable)",
    )
    score.add_argument(
        "--text",
        action="append",
        default=[],
        type=_parse_text,
        metavar="ATTR=tok1,tok2",
        help="text observations for one attribute (repeatable)",
    )
    score.add_argument(
        "--numeric",
        action="append",
        default=[],
        type=_parse_numeric,
        metavar="ATTR=v1,v2",
        help="numeric observations for one attribute (repeatable)",
    )
    score.add_argument(
        "--json", action="store_true", help="emit JSON instead of text"
    )
    return parser


def _run_info(args: argparse.Namespace) -> int:
    engine = InferenceEngine.load(args.artifact)
    if args.json:
        print(json.dumps(engine.info(), indent=2, sort_keys=True))
    else:
        print(engine.artifact.summary())
    return 0


def _run_score(args: argparse.Namespace) -> int:
    engine = InferenceEngine.load(args.artifact)
    text: dict[str, list[str]] = {}
    for attribute, tokens in args.text:
        text.setdefault(attribute, []).extend(tokens)
    numeric: dict[str, list[float]] = {}
    for attribute, values in args.numeric:
        numeric.setdefault(attribute, []).extend(values)
    membership = engine.query(
        args.object_type,
        links=args.link,
        text=text,
        numeric=numeric,
    )
    cluster = int(membership.argmax())
    if args.json:
        print(
            json.dumps(
                {
                    "cluster": cluster,
                    "membership": [float(p) for p in membership],
                }
            )
        )
    else:
        rendered = ", ".join(f"{p:.4f}" for p in membership)
        print(f"cluster: {cluster}")
        print(f"membership: [{rendered}]")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "info":
            return _run_info(args)
        return _run_score(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # output piped into a closed reader (e.g. `info ... | head`)
        sys.stderr.close()
        return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    sys.exit(main())
