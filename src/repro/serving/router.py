"""Scatter-gather routing across a cluster of shard engines.

:class:`ShardedEngine` turns one :class:`~repro.serving.engine.InferenceEngine`
into many without changing a single answer.  A
:class:`~repro.serving.cluster.ShardPlan` pins contiguous block ranges
of the served index space onto shards;
:meth:`~repro.core.state.ModelState.partition` materializes one serving
state per shard (frozen base shared read-only, extension space owned
per shard); and the router fans the engine API out:

* ``query`` / ``assign`` route to one shard -- the owner of any
  extension node the query links to, else a deterministic
  cache-affinity shard -- and ``score_many`` / ``assign_many``
  scatter-gather: the batch is deduplicated cluster-wide, split into
  per-shard blocked fold-in sub-batches (run concurrently on the
  router's scatter pool when it has width), and gathered back in
  input order.
* ``extend`` routes a whole batch to one owning shard (linked
  extensions must colocate -- a shard re-folds its own component
  without reading its peers); ``add_links`` splits a delta by each
  source's owning shard and re-folds only each shard's touched
  component; ``evict`` runs the cluster-wide LRU policy (ages tracked
  by the router across all shards) and applies per-shard verdicts.
* ``promote`` closes the loop at cluster scope: all shards'
  extensions are reassembled in global arrival order onto a clone of
  the base, refit warm-started exactly as a single engine would, and
  the promoted model is re-partitioned under a **rebalanced** plan.

**The determinism contract mirrors PR 4's worker-count contract**:
because fold-in converges per row (rows freeze with their component;
see :func:`~repro.serving.foldin.fold_in`), every shard shares the
frozen base bit-for-bit, and a cluster promote replays the exact
single-engine state, sharded memberships, hard labels, and
post-promote ``g1`` are **bit-identical to the single-engine
reference at every shard count** (pinned at {1, 2, 3} in
``tests/test_serving_cluster.py``) -- provided the same ``block_size``
is used on both sides (block grouping changes reduction order in
refits, exactly as documented on
:class:`~repro.core.config.GenClusConfig`).

Scope: the router is transport-agnostic.  It never reaches into a
shard's state -- every router -> shard interaction goes through the
**shard-handle surface** (see
:mod:`repro.serving.transport`), so shards can be in-process engines
over shared buffers (:class:`~repro.serving.transport.InprocessTransport`,
the default: the scatter runs threads) or worker *processes* fed by
mmap'd artifact bundles
(:class:`~repro.serving.transport.ProcessTransport`; see
:meth:`ShardedEngine.load` with ``transport="process"``).  Routing,
ownership, rebalance, supervision, and the durable-delta replay logs
live here either way, and answers are bit-identical across backends.

Known limits, enforced loudly rather than silently mis-served: an
extension link whose target lives on a *different* shard is rejected
(colocate linked extensions by extending them through one call or one
anchor), and with several invalid queries in one batch the reported
position may differ from the single-engine order (each is still a
real, correctly-numbered error).
"""

from __future__ import annotations

import time
import zlib
from collections.abc import Iterable, Mapping, Sequence
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Any

import numpy as np

from repro.core.config import GenClusConfig
from repro.core.kernels import resolve_workers
from repro.core.state import ModelState
from repro.exceptions import ServingError
from repro.faults import resolve_faults
from repro.obs.observability import Observability
from repro.serving.artifact import ModelArtifact
from repro.serving.cluster import ShardPlan
from repro.serving.engine import (
    _QUERY_ID,
    _canonical_key,
    _dequalify,
    _resolve_metric,
    compile_transient_queries,
    promote_state,
    select_lru_victims,
)
from repro.serving.foldin import FoldInOutcome, NewNode
from repro.serving.supervision import (
    BREAKER_CLOSED,
    ShardFailure,
    ShardSupervisor,
    SupervisionPolicy,
)
from repro.serving.telemetry import (
    RouterMetrics,
    cluster_aggregate,
    info_sections,
)
from repro.serving.transport import resolve_transport


class _ExtensionRecord:
    """Cluster-wide bookkeeping for one folded-in node."""

    __slots__ = ("shard", "arrival")

    def __init__(self, shard: int, arrival: int) -> None:
        self.shard = shard
        self.arrival = arrival


class ShardedEngine:
    """Serves one fitted model from a cluster of shard engines.

    Parameters
    ----------
    state:
        The base lifecycle state to shard
        (:meth:`~repro.core.state.ModelState.from_result` or an
        artifact's ``to_state()``; the :meth:`load` / :meth:`from_result`
        classmethods wrap this).  Must carry no extensions yet.
    n_shards:
        Cluster width; mutually exclusive with ``plan``.
    plan:
        An explicit :class:`ShardPlan` (e.g. one printed by the
        ``shard-plan`` CLI and reviewed by an operator).
    cache_size, max_iterations, tol:
        Per-shard engine controls, as on :class:`InferenceEngine`.
    num_workers:
        Width of the cross-shard scatter for ``score_many`` (``0`` =
        auto-size to the machine): per-shard sub-batches run
        concurrently on the router's dedicated scatter pool (disjoint
        from the width-keyed kernel pools the shards' own blocked
        sweeps use), since the fold-in kernels release the GIL.
        Routing and results are identical at any width.
    shard_workers:
        Blocked-kernel pool width *inside* each shard engine (default
        1: cluster parallelism comes from the scatter, not from
        nesting pools).
    block_size:
        Row-block override shared by the shard plan, every shard's
        fold-in sweeps, and cluster promotes.  Use the same value on a
        singleton engine to compare answers bit-for-bit.
    obs:
        Optional :class:`~repro.obs.Observability` for the **router's**
        registry and tracer (cluster-scope counters, scatter-gather
        latency, ``score_many > shard[i].foldin`` span trees).  Each
        shard engine keeps its own registry;
        :meth:`metrics_snapshot` aggregates them all.  Scores are
        bit-identical with or without it.
    supervision:
        Optional :class:`~repro.serving.supervision.SupervisionPolicy`.
        When set, every router -> shard call runs under a
        :class:`~repro.serving.supervision.ShardSupervisor`: bounded
        retries with deterministic backoff, optional per-call
        timeouts, result-finiteness validation, and a per-shard
        circuit breaker that on open rebuilds the shard engine from
        the shared frozen base plus its replayed durable deltas.
        With no faults injected, supervised answers are bit-identical
        to unsupervised ones (the determinism contract's robustness
        clause).  ``None`` (the default) keeps today's unsupervised
        path verbatim.
    faults:
        Optional :class:`~repro.faults.FaultInjector` (or bare
        :class:`~repro.faults.FaultPlan`) traversed at the router's
        named sites (``shard.score``, ``shard.foldin``,
        ``promote.refit``, and -- under the process transport --
        ``worker.call``) -- the deterministic chaos hook.  ``None``
        is the null path.
    transport:
        Where shards run: ``None`` / ``"inproc"`` (the default --
        engines in this process, PR 5's cluster verbatim) or a
        :class:`~repro.serving.transport.ProcessTransport` instance
        (one worker process per shard; :meth:`load` builds one from
        ``transport="process"``).  Answers are bit-identical across
        backends.
    """

    def __init__(
        self,
        state: ModelState,
        n_shards: int | None = None,
        plan: ShardPlan | None = None,
        cache_size: int = 1024,
        max_iterations: int = 100,
        tol: float = 1e-6,
        num_workers: int = 0,
        shard_workers: int = 1,
        block_size: int | None = None,
        obs: Observability | None = None,
        supervision: SupervisionPolicy | None = None,
        faults=None,
        transport=None,
    ) -> None:
        if (plan is None) == (n_shards is None):
            raise ServingError(
                "pass exactly one of n_shards or plan"
            )
        if num_workers < 0:
            raise ServingError(
                f"num_workers must be >= 0 (0 = auto), got {num_workers}"
            )
        if plan is None:
            plan = ShardPlan.from_state(state, n_shards, block_size)
        elif plan.num_rows != state.num_nodes:
            raise ServingError(
                f"shard plan covers {plan.num_rows} rows but the "
                f"state has {state.num_nodes}"
            )
        self._plan = plan
        self._base_state = state
        self._frozen_view = None  # lazy; invalidated on promote
        self._cache_size = cache_size
        self._max_iterations = max_iterations
        self._tol = tol
        self._num_workers = num_workers
        self._shard_workers = shard_workers
        self._block_size = block_size
        # faults and the transport must exist before the first
        # _build_shards: process-backed handles traverse the injector's
        # worker.call site on every RPC
        self._faults = resolve_faults(faults)
        self._transport = resolve_transport(transport)
        self._build_shards()
        # cluster-wide extension registry + the global LRU clock; the
        # router mirrors the singleton engine's age semantics exactly
        # so cluster eviction picks the same victims the single engine
        # would (arrival order stands in for the served row: both are
        # monotone in fold-in order and survive compactions)
        self._registry: dict[object, _ExtensionRecord] = {}
        self._arrivals = 0
        self._clock = 0
        self._last_used: dict[object, int] = {}
        # cluster-scope counters live in the router's registry (the
        # ROUTER_AUTHORITATIVE families); per-shard counters live in
        # each shard engine's own registry and are merged on export
        self.obs = obs if obs is not None else Observability()
        self._metrics = RouterMetrics(self.obs.metrics)
        self._pool: ThreadPoolExecutor | None = None
        self._supervisor: ShardSupervisor | None = None
        if supervision is not None:
            self._supervisor = ShardSupervisor(
                self._plan.n_shards,
                supervision,
                self._metrics,
                on_open=self._rebuild_shard,
            )

    def _scatter_pool(self) -> ThreadPoolExecutor:
        """The router's own scatter pool, **distinct** from the
        width-keyed kernel pools: a shard sub-batch running on
        ``shared_pool(w)`` whose nested blocked fold-in also submits to
        ``shared_pool(w)`` would wait on workers it is itself
        occupying -- a permanent deadlock whenever ``shard_workers``
        resolves to the scatter width.  A dedicated pool keeps the two
        nesting levels on disjoint worker sets at any configuration.
        """
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=resolve_workers(self._num_workers),
                thread_name_prefix="repro-router-scatter",
            )
        return self._pool

    def _engine_kwargs(self) -> dict[str, Any]:
        """The per-shard engine knobs every transport backend applies
        identically (what makes backends bit-identical by construction)."""
        return {
            "cache_size": self._cache_size,
            "max_iterations": self._max_iterations,
            "tol": self._tol,
            "num_workers": self._shard_workers,
            "block_size": self._block_size,
        }

    def _build_shards(self) -> None:
        self._shards = tuple(
            self._transport.start(
                self._base_state,
                self._plan,
                self._engine_kwargs(),
                faults=self._faults,
            )
        )
        self._reset_shard_books()

    def _reset_shard_books(self) -> None:
        self._owned_counts = [0] * self._plan.n_shards
        # per-shard durable-delta replay log: every committed extend /
        # add_links / evict is appended so a broken shard can be
        # rebuilt from the shared frozen base and replayed to a
        # bit-identical state; a promote clears the logs (the deltas
        # are absorbed into the new base)
        self._shard_log: list[list[tuple[str, tuple]]] = [
            [] for _ in range(self._plan.n_shards)
        ]

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def load(
        cls,
        path: str | Path,
        n_shards: int,
        mmap: bool = False,
        transport=None,
        **kwargs: Any,
    ) -> "ShardedEngine":
        """Shard a saved artifact bundle straight from disk.

        ``mmap=True`` (schema-v3 bundle directories) maps the frozen
        base once and shares the read-only pages across every shard:
        per-shard cold start and ``heal()`` rebuilds touch only the
        pages their queries read instead of copying the model.

        ``transport="process"`` builds a
        :class:`~repro.serving.transport.ProcessTransport` over the
        same bundle: one worker process per shard, each cold-starting
        from the bundle directly (with ``mmap=True`` the frozen base
        is shared read-only across the worker fleet through the OS
        page cache).  A constructed transport instance also works.
        """
        if transport == "process":
            from repro.serving.transport import ProcessTransport

            transport = ProcessTransport(path, mmap=mmap)
        return cls.from_artifact(
            ModelArtifact.load(path, mmap=mmap),
            n_shards,
            transport=transport,
            **kwargs,
        )

    @classmethod
    def from_artifact(
        cls, artifact: ModelArtifact, n_shards: int, **kwargs: Any
    ) -> "ShardedEngine":
        return cls(artifact.to_state(), n_shards=n_shards, **kwargs)

    @classmethod
    def from_result(
        cls, result, n_shards: int, **kwargs: Any
    ) -> "ShardedEngine":
        """Shard an in-memory fit (no disk roundtrip)."""
        return cls(
            ModelState.from_result(result), n_shards=n_shards, **kwargs
        )

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def plan(self) -> ShardPlan:
        """The live shard plan (rebalanced by :meth:`promote`)."""
        return self._plan

    @property
    def shards(self) -> tuple:
        """The per-shard handles, in shard order (read-only peek --
        mutate through the router, which owns the cluster registry).
        In-process these are the :class:`InferenceEngine` objects
        themselves; under a process transport they are
        :class:`~repro.serving.transport.ProcessShardHandle` clients."""
        return self._shards

    @property
    def transport(self):
        """The live transport backend (``describe()`` for details)."""
        return self._transport

    @property
    def n_shards(self) -> int:
        return self._plan.n_shards

    @property
    def supervisor(self) -> ShardSupervisor | None:
        """The live :class:`ShardSupervisor`, or ``None`` when the
        router runs unsupervised."""
        return self._supervisor

    @property
    def n_clusters(self) -> int:
        return self._base_state.n_clusters

    @property
    def num_base_nodes(self) -> int:
        return self._base_state.num_base_nodes

    @property
    def num_extension_nodes(self) -> int:
        return len(self._registry)

    @property
    def num_nodes(self) -> int:
        """Base plus folded-in extension nodes, cluster-wide."""
        return self.num_base_nodes + self.num_extension_nodes

    @property
    def refit_capable(self) -> bool:
        return self._base_state.refit_capable

    def strengths(self) -> dict[str, float]:
        return {
            name: float(g)
            for name, g in zip(
                self._base_state.relation_names, self._base_state.gamma
            )
        }

    def has_node(self, node: object) -> bool:
        return (
            node in self._registry
            or self._base_state.network.has_node(node)
        )

    def owner_of(self, node: object) -> int:
        """The shard owning a served node (base row or extension)."""
        record = self._registry.get(node)
        if record is not None:
            return record.shard
        row = self._base_state.network.node_index_view.get(node)
        if row is None:
            raise ServingError(
                f"node {node!r} is not served by this engine"
            )
        return self._plan.shard_of_row(row)

    def membership_of(self, node: object) -> np.ndarray:
        """Membership row of any served node, from its owner shard."""
        shard = self.owner_of(node)
        self._touch_usage(node)
        return self._shards[shard].membership_of(node)

    def hard_label_of(self, node: object) -> int:
        return int(np.argmax(self.membership_of(node)))

    # ------------------------------------------------------------------
    # transient queries
    # ------------------------------------------------------------------
    def query(
        self,
        object_type: str,
        links: Sequence[tuple] = (),
        text: Mapping[str, Any] | None = None,
        numeric: Mapping[str, Sequence[float]] | None = None,
    ) -> np.ndarray:
        """Score a hypothetical node on its owning shard.

        A query linking to folded-in nodes goes to their owner (it
        needs their membership rows); any other query goes to a
        deterministic cache-affinity shard.  Every shard shares the
        frozen base bit-for-bit, so the answer is identical no matter
        where it runs.
        """
        try:
            spec = NewNode(
                node=_QUERY_ID,
                object_type=object_type,
                links=tuple(links),
                text=dict(text or {}),
                numeric=dict(numeric or {}),
            )
        except ServingError as exc:
            raise _dequalify(exc) from None
        shard = self._route_spec(spec, _canonical_key(spec))
        self._metrics.queries.inc()
        self._touch_query_targets(spec)

        def attempt() -> np.ndarray:
            row = self._shards[shard].query(
                object_type, links=links, text=text, numeric=numeric
            )
            if self._faults is not None:
                row = self._faults.traverse(
                    "shard.score", payload=row, shard=shard
                )
            return row

        if self._supervisor is not None:
            return self._supervisor.call(
                shard, "shard.score", attempt, validate=_require_finite
            )
        return attempt()

    def assign(
        self,
        object_type: str,
        links: Sequence[tuple] = (),
        text: Mapping[str, Any] | None = None,
        numeric: Mapping[str, Sequence[float]] | None = None,
    ) -> int:
        return int(
            np.argmax(self.query(object_type, links, text, numeric))
        )

    def validate_queries(
        self, queries: Sequence[Mapping[str, Any]]
    ) -> int:
        """Model-aware validation of a ``score_many`` batch -- folding
        nothing in and touching no shard.

        Beyond the shape checks of ``compile_transient_queries`` this
        verifies each query against the fitted schema: declared object
        type, declared relation with a learned strength, matching
        source type, and a link target that is either a fitted node or
        a registered extension node (fitted targets are also
        type-checked; an extension target's type was validated when it
        was extended).  Raises :class:`ServingError` naming the first
        offending query's position; returns the batch size.

        The HTTP gateway runs this per request *before* admission, so
        one caller's malformed query is rejected alone (400) instead
        of poisoning the micro-batch -- a validation error inside a
        merged ``score_many`` sub-batch would degrade every co-batched
        query routed to the same shard.
        """
        specs = compile_transient_queries(queries)
        model = self._frozen_base()
        for position, spec in enumerate(specs):
            if spec.object_type not in model.object_types:
                raise ServingError(
                    f"query #{position} has unknown object type "
                    f"{spec.object_type!r} (declared: "
                    f"{list(model.object_types)})"
                )
            for relation, target, _ in spec.links:
                declaration = model.relation_types.get(relation)
                if declaration is None:
                    raise ServingError(
                        f"query #{position}: unknown relation "
                        f"{relation!r}"
                    )
                if relation not in model.relation_names:
                    raise ServingError(
                        f"query #{position}: relation {relation!r} "
                        f"carried no links in the fit, so it has no "
                        f"learned strength to weight fold-in links "
                        f"with"
                    )
                expected_source, expected_target = declaration
                if spec.object_type != expected_source:
                    raise ServingError(
                        f"query #{position}: relation {relation!r} "
                        f"expects source type {expected_source!r}, "
                        f"query has type {spec.object_type!r}"
                    )
                if target in model.node_index:
                    target_type = model.node_types[
                        model.node_index[target]
                    ]
                    if target_type != expected_target:
                        raise ServingError(
                            f"query #{position}: relation "
                            f"{relation!r} expects target type "
                            f"{expected_target!r}, node {target!r} "
                            f"has type {target_type!r}"
                        )
                elif target not in self._registry:
                    raise ServingError(
                        f"query #{position}: link target {target!r} "
                        f"is neither a fitted node nor a served "
                        f"extension node"
                    )
        return len(specs)

    def _frozen_base(self):
        """The base state's frozen view, built once per promotion."""
        if self._frozen_view is None:
            self._frozen_view = self._base_state.frozen_view()
        return self._frozen_view

    def score_many(
        self,
        queries: Sequence[Mapping[str, Any]],
        partial: bool = False,
    ) -> "list[np.ndarray | ShardFailure]":
        """Scatter-gather a batch of transient queries.

        The batch is validated in global order (error positions match
        the single engine's numbering), deduplicated cluster-wide
        (duplicates fold once, on one shard), routed -- owner shard
        for extension-linked queries, cache-affinity shard otherwise
        -- and the per-shard sub-batches run as blocked fold-in
        batches, concurrently when the router has pool width.  Per-row
        convergence makes the gathered scores bit-identical to the
        single-engine batch (and to one-at-a-time queries).

        **Strict mode** (the default) keeps today's semantics: any
        shard failure fails the whole batch -- the remaining in-flight
        sibling sub-batches are cancelled or drained first (never
        abandoned on the scatter pool), and their errors ride the
        raised exception as context.  **Partial mode**
        (``partial=True``) degrades instead of failing: queries owned
        by a broken shard come back as typed
        :class:`~repro.serving.supervision.ShardFailure` markers
        (counted in ``repro_degraded_queries_total``) while every
        healthy shard's rows are returned bit-identical -- a degraded
        batch can be incomplete, but it can never carry wrong numbers.
        """
        keys: list[tuple] = []

        def on_spec(spec: NewNode) -> None:
            keys.append(_canonical_key(spec))
            self._touch_query_targets(spec)

        specs = compile_transient_queries(queries, on_spec)
        self._metrics.queries.inc(len(specs))
        if not specs:
            return []
        # cluster-wide dedup: the first occurrence of a key is routed,
        # later duplicates reuse its gathered row.  Shards receive the
        # already-compiled specs (whose sentinel ids carry the *global*
        # positions, so shard-side errors name the caller's numbering)
        # and skip a second validation pass.
        routed: dict[tuple, int] = {}
        shard_specs: list[list[NewNode]] = [[] for _ in self._shards]
        shard_keys: list[list[tuple]] = [[] for _ in self._shards]
        for spec, key in zip(specs, keys):
            if key in routed:
                continue
            shard = self._route_spec(spec, key)
            routed[key] = shard
            shard_specs[shard].append(spec)
            shard_keys[shard].append(key)
        active = [
            shard
            for shard in range(self.n_shards)
            if shard_specs[shard]
        ]
        gathered: dict[int, list[np.ndarray]] = {}
        failures: dict[int, ShardFailure] = {}
        width = min(resolve_workers(self._num_workers), len(active))
        batch_start = time.perf_counter()
        with self.obs.span(
            "score_many",
            queries=len(specs),
            unique=len(routed),
            active_shards=len(active),
        ) as batch_span:
            if width > 1:
                pool = self._scatter_pool()
                futures = {
                    shard: pool.submit(
                        self._score_shard,
                        shard,
                        shard_specs[shard],
                        shard_keys[shard],
                        batch_span,
                    )
                    for shard in active
                }
                # gather (and surface errors) in shard order:
                # determinism over completion order, like every
                # blocked reduction
                for position, shard in enumerate(active):
                    try:
                        gathered[shard] = futures[shard].result()
                    except Exception as exc:
                        if partial:
                            failures[shard] = ShardFailure(
                                shard=shard, error=str(exc)
                            )
                            continue
                        _settle_siblings(
                            exc, futures, active[position + 1 :]
                        )
                        raise
                    except BaseException as exc:
                        _settle_siblings(
                            exc, futures, active[position + 1 :]
                        )
                        raise
            else:
                for shard in active:
                    try:
                        gathered[shard] = self._score_shard(
                            shard,
                            shard_specs[shard],
                            shard_keys[shard],
                            batch_span,
                        )
                    except Exception as exc:
                        if not partial:
                            raise
                        failures[shard] = ShardFailure(
                            shard=shard, error=str(exc)
                        )
        self._metrics.batches.inc()
        self._metrics.batch_size.observe(len(specs))
        self._metrics.batch_seconds.observe(
            time.perf_counter() - batch_start
        )
        by_key: dict[tuple, np.ndarray] = {}
        marker_by_key: dict[tuple, ShardFailure] = {}
        for shard in active:
            if shard in failures:
                for key in shard_keys[shard]:
                    marker_by_key[key] = failures[shard]
                continue
            for membership, key in zip(
                gathered[shard], shard_keys[shard]
            ):
                by_key[key] = membership
        if not failures:
            return [by_key[key].copy() for key in keys]
        results: list[np.ndarray | ShardFailure] = []
        degraded = 0
        for key in keys:
            row = by_key.get(key)
            if row is not None:
                results.append(row.copy())
            else:
                results.append(marker_by_key[key])
                degraded += 1
        self._metrics.degraded_queries.inc(degraded)
        return results

    def assign_many(
        self, queries: Sequence[Mapping[str, Any]]
    ) -> list[int]:
        return [
            int(np.argmax(membership))
            for membership in self.score_many(queries)
        ]

    # ------------------------------------------------------------------
    # top-k similarity serving
    # ------------------------------------------------------------------
    def similar(
        self,
        node: object,
        k: int = 10,
        metric: str = "cosine",
        object_type: str | None = None,
    ) -> list[tuple[object, float]]:
        """Cluster-wide :meth:`InferenceEngine.similar`, scatter-gathered.

        Bit-identical to the singleton engine's answer at every shard
        count: each shard runs the blocked partial selection over its
        **owned** base rows plus its own extensions (every served node
        scanned exactly once across the cluster) and the router k-way
        merges the per-shard shortlists under the global total order
        (score desc, then global node index asc).
        """
        return self.similar_many(
            [node], k=k, metric=metric, object_type=object_type
        )[0]

    def similar_many(
        self,
        nodes: Sequence[object],
        k: int = 10,
        metric: str = "cosine",
        object_type: str | None = None,
    ) -> list[list[tuple[object, float]]]:
        """A batch of :meth:`similar` queries as one cluster scatter."""
        metric = _resolve_metric(metric)
        queries = []
        for node in nodes:
            vector, node_type = self._shards[
                self.owner_of(node)
            ].served_vector(node)
            name = (
                object_type if object_type is not None else node_type
            )
            queries.append((vector, name, {node}))
        return self._scatter_similarity(
            "similar_many", queries, k, metric
        )

    def suggest_links(
        self,
        node: object,
        relation: str,
        k: int = 10,
        metric: str = "cosine",
    ) -> list[tuple[object, float]]:
        """Cluster-wide :meth:`InferenceEngine.suggest_links`.

        The relation check and candidate typing run on the node's
        owner shard; neighbor exclusion for an extension node reads
        the owner's spec (the shard holding its accumulated links),
        while base-node links come from the router's base state --
        shard states are serve-only slices whose node-only network
        never hydrates.  The scan itself fans out across all shards
        like :meth:`similar_many`.
        """
        metric = _resolve_metric(metric)
        vector, target_type, linked = self._shards[
            self.owner_of(node)
        ].suggest_context(node, relation)
        if linked is not None:
            # extension node: its accumulated links live on the owner
            exclude = {node} | set(linked)
        else:
            # base node: out-links live in the router's training
            # payload (shard states are serve-only slices)
            self._base_state.hydrate()
            exclude = {node} | {
                target
                for target, _, _ in (
                    self._base_state.network.out_neighbors(
                        node, relation
                    )
                )
            }
        return self._scatter_similarity(
            "suggest_links",
            [(vector, target_type, exclude)],
            k,
            metric,
        )[0]

    def _scatter_similarity(
        self,
        span_name: str,
        queries: list[tuple[np.ndarray, str, set]],
        k: int,
        metric: str,
    ) -> list[list[tuple[object, float]]]:
        """Scatter a similarity batch, gather, and k-way merge.

        Each query travels as ``(theta_vector, candidate_type,
        excluded_node_ids)`` -- vectors rather than rows because an
        extension query's row exists only on its owner shard.  Shards
        run on the router's scatter pool (disjoint from the kernel
        pools, same deadlock-avoidance as ``score_many``) and are
        gathered in shard order; the merge key for an extension node
        is ``num_base + arrival``, which reproduces the singleton
        engine's served-row order exactly (fold-in append order, with
        relative order preserved across evictions).
        """
        if k < 1:
            raise ServingError(f"k must be >= 1, got {k}")
        if not queries:
            return []
        matrix = np.array(
            [vector for vector, _, _ in queries], dtype=np.float64
        )
        candidate_types = [name for _, name, _ in queries]
        exclude_nodes = [excluded for _, _, excluded in queries]
        num_base = self.num_base_nodes
        tick = time.perf_counter()
        with self.obs.span(
            span_name, queries=len(queries), k=int(k), metric=metric
        ):

            def scan(shard: int):
                return self._shards[shard].similar_rows_partial(
                    matrix,
                    k,
                    metric,
                    candidate_types=candidate_types,
                    exclude_nodes=exclude_nodes,
                    base_range=self._plan.rows_of(shard),
                )

            width = min(
                resolve_workers(self._num_workers), self.n_shards
            )
            if width > 1:
                pool = self._scatter_pool()
                futures = [
                    pool.submit(scan, shard)
                    for shard in range(self.n_shards)
                ]
                # gather in shard order: determinism over completion
                # order, like every blocked reduction
                gathered = [future.result() for future in futures]
            else:
                gathered = [
                    scan(shard) for shard in range(self.n_shards)
                ]
            results = []
            # lazy per-shard extension-node lookup, fetched at most
            # once per scatter (over a process transport this is one
            # RPC per shard, not one per hit)
            shard_extensions: dict[int, tuple[object, ...]] = {}
            for position in range(len(queries)):
                entries: list[tuple[float, int, object]] = []
                for shard, partials in enumerate(gathered):
                    scores, rows = partials[position]
                    for score, row in zip(scores, rows):
                        row = int(row)
                        if row < num_base:
                            key = row
                            found = self._base_state.network.node_at(
                                row
                            )
                        else:
                            extensions = shard_extensions.get(shard)
                            if extensions is None:
                                extensions = self._shards[
                                    shard
                                ].extension_nodes()
                                shard_extensions[shard] = extensions
                            found = extensions[row - num_base]
                            key = (
                                num_base
                                + self._registry[found].arrival
                            )
                        entries.append((float(score), key, found))
                entries.sort(key=lambda entry: (-entry[0], entry[1]))
                results.append(
                    [
                        (found, score)
                        for score, _, found in entries[:k]
                    ]
                )
        self._metrics.similarity_queries.inc(len(queries))
        self._metrics.similarity_seconds.observe(
            time.perf_counter() - tick
        )
        return results

    def _score_shard(
        self,
        shard: int,
        specs: list[NewNode],
        keys: list[tuple],
        parent,
    ) -> list[np.ndarray]:
        """One shard's sub-batch, timed and traced.

        Runs on a scatter-pool thread when the router has width, so
        the ``shard[i].foldin`` span must name its ``parent``
        explicitly -- the batch span lives on the caller's thread-local
        stack, not this one's.

        Under supervision each attempt (including its ``shard.foldin``
        fault traverse) runs through
        :meth:`~repro.serving.supervision.ShardSupervisor.call`, which
        retries, validates finiteness, and trips the shard's breaker;
        the fault-free supervised path executes the identical scoring
        code inline.
        """
        inflight = self._metrics.inflight
        hist = self._metrics.shard_batch_seconds(shard)

        def attempt() -> list[np.ndarray]:
            rows = self._shards[shard].score_specs(specs, keys)
            if self._faults is not None:
                rows = self._faults.traverse(
                    "shard.foldin", payload=rows, shard=shard
                )
            return rows

        inflight.inc()
        tick = time.perf_counter()
        try:
            with self.obs.span(
                f"shard[{shard}].foldin",
                parent=parent,
                queries=len(specs),
            ):
                if self._supervisor is not None:
                    return self._supervisor.call(
                        shard,
                        "shard.foldin",
                        attempt,
                        validate=_require_finite,
                    )
                return attempt()
        finally:
            hist.observe(time.perf_counter() - tick)
            inflight.dec()

    def _route_spec(self, spec: NewNode, key: tuple) -> int:
        owners = {
            self._registry[target].shard
            for _, target, _ in spec.links
            if target in self._registry
        }
        if len(owners) > 1:
            raise ServingError(
                f"query links to extension nodes owned by shards "
                f"{sorted(owners)}; linked extensions must be "
                f"colocated on one shard (extend them through one "
                f"batch or one anchor)"
            )
        if owners:
            return owners.pop()
        return _affinity_shard(key, self.n_shards)

    # ------------------------------------------------------------------
    # durable deltas
    # ------------------------------------------------------------------
    def extend(self, nodes: Sequence[NewNode]) -> FoldInOutcome:
        """Fold a batch in on its owning shard.

        The whole batch lands on **one** shard -- in-batch links read
        each other's rows during the fixed point, so splitting a batch
        would change its trajectories.  The owner is the shard holding
        any already-served extension the batch links to (linking to
        extensions on different shards is rejected); an unanchored
        batch goes to the least-loaded shard, which keeps the cluster
        balanced without ever affecting scores (every shard shares the
        same frozen base).
        """
        specs = list(nodes)
        for spec in specs:
            if not isinstance(spec, NewNode):
                raise ServingError(
                    f"fold-in expects NewNode specs, got "
                    f"{type(spec).__name__}"
                )
            if spec.node in self._registry:
                raise ServingError(
                    f"node {spec.node!r} is already part of the fitted "
                    f"model; fold-in only accepts unseen nodes"
                )
        owners = {
            self._registry[target].shard
            for spec in specs
            for _, target, _ in spec.links
            if target in self._registry
        }
        if len(owners) > 1:
            raise ServingError(
                f"extend batch links to extension nodes owned by "
                f"shards {sorted(owners)}; linked extensions must be "
                f"colocated on one shard"
            )
        if owners:
            shard = owners.pop()
        else:
            shard = min(
                range(self.n_shards),
                key=lambda s: (self._owned_counts[s], s),
            )
        outcome = self._shards[shard].extend(specs)
        if specs:
            self._clock += 1
            for spec in specs:
                self._registry[spec.node] = _ExtensionRecord(
                    shard, self._arrivals
                )
                self._arrivals += 1
                self._last_used[spec.node] = self._clock
            self._owned_counts[shard] += len(specs)
            self._shard_log[shard].append(("extend", tuple(specs)))
        return outcome

    def add_links(
        self,
        links: Iterable[
            tuple[object, str, object]
            | tuple[object, str, object, float]
        ],
    ) -> FoldInOutcome:
        """Append out-links, split by each source's owning shard.

        A delta may carry sources on several shards (a *cross-shard
        delta*): each shard re-folds only its own touched component,
        in shard order, and the per-shard outcomes are merged.  A link
        whose *target* is an extension on a different shard than its
        source is rejected -- the source's re-folds would need a
        membership row its shard does not hold.
        """
        state = self._base_state
        per_shard: dict[int, list[tuple]] = {}
        sources: list[object] = []
        for link in links:
            if len(link) not in (3, 4):
                raise ServingError(
                    f"link {link!r} must be "
                    f"(source, relation, target[, weight])"
                )
            source, _, target = link[0], link[1], link[2]
            record = self._registry.get(source)
            if record is None:
                if state.network.has_node(source):
                    raise ServingError(
                        f"node {source!r} belongs to the frozen base "
                        f"model; its membership cannot change, so the "
                        f"engine rejects new out-links on it"
                    )
                raise ServingError(
                    f"link source {source!r} is not served by this "
                    f"engine"
                )
            target_record = self._registry.get(target)
            if (
                target_record is not None
                and target_record.shard != record.shard
            ):
                raise ServingError(
                    f"link {source!r} -> {target!r} crosses shards "
                    f"{record.shard} -> {target_record.shard}; "
                    f"extension link targets must live on the "
                    f"source's shard"
                )
            per_shard.setdefault(record.shard, []).append(link)
            sources.append(source)
        outcomes = []
        for shard in sorted(per_shard):
            outcomes.append(
                self._shards[shard].add_links(per_shard[shard])
            )
            self._shard_log[shard].append(
                ("add_links", tuple(per_shard[shard]))
            )
        if per_shard:
            self._clock += 1
            for source in sources:
                self._last_used[source] = self._clock
        return _merge_outcomes(outcomes, self.n_clusters)

    # ------------------------------------------------------------------
    # extension-space management
    # ------------------------------------------------------------------
    def evict(self, max_nodes: int) -> tuple[object, ...]:
        """Shrink the cluster-wide extension space to ``max_nodes``.

        One LRU policy over all shards: the router's global clock and
        arrival order reproduce exactly the ages and tie-breaks a
        single engine tracking the same traffic would use, the shared
        worklist selection honours per-shard link-dependency pinning,
        and the verdicts are applied on each owner shard.  Returns the
        evicted node ids, oldest first.
        """
        if max_nodes < 0:
            raise ServingError(
                f"max_nodes must be >= 0, got {max_nodes}"
            )
        excess = len(self._registry) - max_nodes
        if excess <= 0:
            return ()
        registry = self._registry

        def order_key(node):
            return (
                self._last_used.get(node, 0), registry[node].arrival
            )

        def dependants_of(node):
            return self._shards[
                registry[node].shard
            ].extension_dependants(node)

        candidates = sorted(
            registry, key=lambda node: registry[node].arrival
        )
        chosen_set = select_lru_victims(
            candidates,
            excess,
            order_key=order_key,
            dependants_of=dependants_of,
            row_of=lambda node: registry[node].arrival,
        )
        if not chosen_set:
            return ()
        chosen = tuple(sorted(chosen_set, key=order_key))
        by_shard: dict[int, list[object]] = {}
        for node in chosen_set:
            by_shard.setdefault(registry[node].shard, []).append(node)
        for shard in sorted(by_shard):
            self._shards[shard].evict_nodes(by_shard[shard])
            self._owned_counts[shard] -= len(by_shard[shard])
            self._shard_log[shard].append(
                ("evict", tuple(by_shard[shard]))
            )
        for node in chosen:
            del self._registry[node]
            self._last_used.pop(node, None)
        self._metrics.evictions.inc(len(chosen))
        return chosen

    # ------------------------------------------------------------------
    # promotion: the cluster-scope refit
    # ------------------------------------------------------------------
    def promote(
        self, config: GenClusConfig | None = None
    ) -> "object":
        """Refit base + *all* shards' extensions and re-partition.

        Promotion is deliberately cluster-scoped: a single shard
        refitting alone would fork the frozen base out from under its
        peers.  The router reassembles the exact single-engine state
        -- every extension spec and its current membership row, in
        global arrival order, onto a clone of the base -- and runs the
        same warm-started refit an
        :meth:`InferenceEngine.promote <repro.serving.engine.InferenceEngine.promote>`
        would, so the promoted memberships, gamma, and ``g1`` are
        bit-identical to the single-engine reference.  The grown base
        is then split under a **rebalanced** :class:`ShardPlan` and
        fresh shard engines serve it with empty extension spaces.

        Promotion is **transactional** at cluster scope: the candidate
        is reassembled, refit, and validated entirely off to the side
        (:func:`~repro.serving.engine.promote_state`), and the cluster
        swaps atomically -- on a failed or divergent refit the old
        shards keep serving verbatim and
        ``repro_promote_rollbacks_total`` is incremented.

        Returns the refit :class:`~repro.core.result.GenClusResult`.
        """
        reference = self._base_state.clone_base()
        ordered = sorted(
            self._registry.items(), key=lambda item: item[1].arrival
        )
        if ordered:
            # one extension_export per involved shard (one RPC each
            # over a process transport), reassembled here in global
            # arrival order -- exactly the single-engine state
            exports: dict[int, dict[object, tuple]] = {}
            specs = []
            rows = np.empty((len(ordered), self.n_clusters))
            for position, (node, record) in enumerate(ordered):
                export = exports.get(record.shard)
                if export is None:
                    nodes, shard_specs, shard_rows = self._shards[
                        record.shard
                    ].extension_export()
                    export = {
                        name: (spec, shard_rows[index])
                        for index, (name, spec) in enumerate(
                            zip(nodes, shard_specs)
                        )
                    }
                    exports[record.shard] = export
                spec, row = export[node]
                specs.append(spec)
                rows[position] = row
            reference.append_extensions(tuple(specs), rows)
        with self.obs.span(
            "promote", extension_nodes=len(self._registry)
        ):
            tick = time.perf_counter()
            try:
                result, promoted = promote_state(
                    reference,
                    config,
                    num_workers=self._shard_workers,
                    block_size=self._block_size,
                    obs=self.obs,
                    faults=self._faults,
                )
            except Exception:
                self._metrics.promote_rollbacks.inc()
                raise
            self._metrics.promote_seconds.observe(
                time.perf_counter() - tick
            )
        self._base_state = promoted
        self._frozen_view = None
        self._plan = ShardPlan.from_state(
            promoted, self.n_shards, self._block_size
        )
        # hot replacement is the transport's job: in-process it is a
        # plain re-partition; the process transport freezes the refit
        # into a fresh bundle and two-phase swaps it under the live
        # workers (old engines keep answering until commit)
        self._shards = tuple(
            self._transport.replace(
                promoted,
                result,
                self._plan,
                self._engine_kwargs(),
                faults=self._faults,
            )
        )
        self._reset_shard_books()
        self._registry = {}
        self._arrivals = 0
        self._last_used = {}
        self._metrics.promotions.inc()
        if self._supervisor is not None:
            for shard in range(self.n_shards):
                self._supervisor.reset(shard)
        return result

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------
    def heal(self, shard: int | None = None) -> tuple[int, ...]:
        """Rebuild broken shards and close their breakers.

        With ``shard`` given, force-rebuilds that one shard (frozen
        base + replayed durable deltas) regardless of breaker state;
        with no argument, rebuilds every shard whose breaker is not
        closed (a no-op on a healthy unsupervised cluster).  Returns
        the healed shard ids.  Because the replay log is deterministic
        and the frozen base is shared, a healed shard serves
        bit-identical answers to one that never failed.
        """
        if shard is not None:
            if not 0 <= shard < self.n_shards:
                raise ServingError(
                    f"shard must lie in 0..{self.n_shards - 1}, "
                    f"got {shard}"
                )
            targets = [shard]
        elif self._supervisor is not None:
            targets = [
                s
                for s in range(self.n_shards)
                if self._supervisor.breaker(s).state != BREAKER_CLOSED
            ]
        else:
            targets = []
        for target in targets:
            self._rebuild_shard(target)
            if self._supervisor is not None:
                self._supervisor.reset(target)
        return tuple(targets)

    def _rebuild_shard(self, shard: int) -> None:
        """Rebuild one shard engine from the shared frozen base plus
        its replayed durable-delta log.

        This is the supervisor's ``on_open`` hook (and :meth:`heal`'s
        mechanism): the broken shard is discarded and the transport
        provides a fresh handle -- in-process, a serving state
        partitioned off the pristine base
        (:meth:`~repro.core.state.ModelState.partition_shard`, sharing
        the same frozen theta buffer as its healthy peers); under the
        process transport, a **respawned worker** cold-started from
        the current bundle -- then the shard's committed extends /
        link deltas / evictions replay in commit order.  Every
        replayed operation is deterministic, so the recovered
        extension rows are bit-identical to the lost ones.
        """
        engine = self._transport.rebuild(
            shard,
            self._base_state,
            self._plan,
            self._engine_kwargs(),
            faults=self._faults,
        )
        for op, payload in self._shard_log[shard]:
            if op == "extend":
                engine.extend(list(payload))
            elif op == "add_links":
                engine.add_links(list(payload))
            elif op == "evict":
                engine.evict_nodes(payload)
            else:  # pragma: no cover - defensive
                raise ServingError(
                    f"unknown replay-log operation {op!r}"
                )
        shards = list(self._shards)
        shards[shard] = engine
        self._shards = tuple(shards)
        self._metrics.shard_rebuilds.inc()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release cluster resources: the scatter pool and the
        transport (which shuts worker processes down cleanly).  A
        closed in-process cluster keeps answering -- its shards are
        plain objects -- but a closed process-backed cluster does not.
        Idempotent."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        self._transport.shutdown()

    def __enter__(self) -> "ShardedEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # telemetry
    # ------------------------------------------------------------------
    def metrics_snapshot(self) -> dict[str, Any]:
        """The cluster-wide metrics snapshot.

        Every shard registry is snapshotted (gauges refreshed) and
        summed with the router's own -- fixed bucket bounds make the
        histograms sum per-bucket -- then the
        :data:`~repro.serving.telemetry.ROUTER_AUTHORITATIVE` families
        are overwritten with the router's series, since those are
        tracked at cluster scope and would double-count if summed with
        the shards' local copies.
        """
        return cluster_aggregate(
            [shard.metrics_snapshot() for shard in self._shards],
            self.obs.metrics.snapshot(),
        )

    def info(self) -> dict[str, Any]:
        """Cluster telemetry: the singleton :meth:`InferenceEngine.info`
        schema (its counter-backed sections derived from the
        :meth:`metrics_snapshot` cluster aggregate through the shared
        ``info_sections`` schema), plus a ``cluster`` section with the
        live plan and per-shard snapshots."""
        shard_infos = [engine.info() for engine in self._shards]
        first = shard_infos[0]
        sections = info_sections(self.metrics_snapshot())
        sections["similarity"]["version"] = self._base_state.version
        # cluster-scope memory: the shared frozen base buffer (the
        # router never sees the artifact object, so "mapped" here
        # means the base the shards share is still a read-only map)
        base_memory = dict(first["memory"])
        base_memory.update(self._base_state.memory_info())
        base_memory["artifact_mapped"] = self._base_state.theta_mapped
        return {
            "schema_version": first["schema_version"],
            "memory": base_memory,
            "refit_capable": self.refit_capable,
            "n_clusters": self.n_clusters,
            "num_base_nodes": self.num_base_nodes,
            "num_extension_nodes": len(self._registry),
            "object_types": first["object_types"],
            "relations": self.strengths(),
            "attributes": first["attributes"],
            "execution": {
                "num_workers": self._num_workers,
                "pool_width": resolve_workers(self._num_workers),
                "block_size": self._block_size,
                # the router is the whole cluster, not one shard
                "shard_id": None,
                "shard_count": self.n_shards,
                **self._base_state.execution_shape(self._block_size),
            },
            **sections,
            "cluster": {
                "n_shards": self.n_shards,
                "plan": self._plan.describe(self._base_state),
                "shard_extension_nodes": list(self._owned_counts),
                "transport": self._transport.describe(),
                "shards": shard_infos,
            },
            "supervision": (
                {
                    "enabled": True,
                    "breakers": self._supervisor.states(),
                    "policy": {
                        "max_retries": (
                            self._supervisor.policy.max_retries
                        ),
                        "backoff_schedule": list(
                            self._supervisor.policy.backoff_schedule()
                        ),
                        "call_timeout": (
                            self._supervisor.policy.call_timeout
                        ),
                        "breaker_threshold": (
                            self._supervisor.policy.breaker_threshold
                        ),
                        "breaker_reset_after": (
                            self._supervisor.policy.breaker_reset_after
                        ),
                    },
                }
                if self._supervisor is not None
                else {"enabled": False}
            ),
        }

    # ------------------------------------------------------------------
    def _touch_usage(self, node: object) -> None:
        if node in self._registry:
            self._clock += 1
            self._last_used[node] = self._clock

    def _touch_query_targets(self, spec: NewNode) -> None:
        touched = [
            target
            for _, target, _ in spec.links
            if target in self._registry
        ]
        if touched:
            self._clock += 1
            for target in touched:
                self._last_used[target] = self._clock


# ----------------------------------------------------------------------
def _require_finite(result) -> None:
    """Supervised-call validator: reject non-finite membership rows.

    Runs inside each supervised attempt, so a corrupted shard result
    (an injected NaN, a torn buffer) counts as a retryable failure --
    a degraded batch may be incomplete, never numerically wrong.
    """
    rows = result if isinstance(result, (list, tuple)) else [result]
    for row in rows:
        if not np.isfinite(row).all():
            raise ServingError(
                "shard returned non-finite membership scores"
            )


def _settle_siblings(exc: BaseException, futures, remaining) -> None:
    """Cancel-or-drain the sibling futures of a failed gather.

    A strict-mode gather that raises must not abandon the other
    shards' in-flight sub-batches on the scatter pool: each remaining
    future is cancelled if still queued, else drained -- so its
    exception (if any) is observed, not orphaned -- and the sibling
    errors are attached to the raised exception as context
    (``exc.sibling_failures``; also ``add_note`` on Python >= 3.11).
    """
    notes = []
    for shard in remaining:
        future = futures[shard]
        if future.cancel():
            continue
        try:
            future.result()
        except Exception as sibling:
            notes.append(
                f"shard {shard} also failed: "
                f"{type(sibling).__name__}: {sibling}"
            )
    if notes:
        exc.sibling_failures = tuple(notes)
        if hasattr(exc, "add_note"):
            for note in notes:
                exc.add_note(note)


def _affinity_shard(key: tuple, n_shards: int) -> int:
    """Deterministic cache-affinity routing for base-only queries.

    A stable digest of the canonical query key (``repr`` of nested
    tuples of scalars -- reproducible across processes, unlike
    ``hash``) so a repeated query lands on the shard already holding
    its memoized answer.  Any shard would return the identical score;
    affinity only buys cache hits.
    """
    return zlib.crc32(repr(key).encode("utf-8")) % n_shards


def _merge_outcomes(
    outcomes: list[FoldInOutcome], n_clusters: int
) -> FoldInOutcome:
    """Concatenate per-shard re-fold outcomes (shard order)."""
    if not outcomes:
        return FoldInOutcome(
            nodes=(),
            theta=np.zeros((0, n_clusters)),
            iterations=0,
            converged=True,
            oov_terms=0,
        )
    if len(outcomes) == 1:
        return outcomes[0]
    return FoldInOutcome(
        nodes=tuple(
            node for outcome in outcomes for node in outcome.nodes
        ),
        theta=np.concatenate([o.theta for o in outcomes], axis=0),
        iterations=sum(o.iterations for o in outcomes),
        converged=all(o.converged for o in outcomes),
        oov_terms=sum(o.oov_terms for o in outcomes),
    )
