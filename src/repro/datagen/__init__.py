"""Synthetic data generators for the paper's three evaluation networks.

* :mod:`repro.datagen.weather` -- the synthetic weather sensor network of
  Appendix C (ring-shaped weather patterns, kNN links, incomplete
  per-type numeric attributes).
* :mod:`repro.datagen.dblp` -- a seeded synthetic stand-in for the DBLP
  "four-area" data set (the real extract needs network access; see
  DESIGN.md section 2 for the substitution argument).  Builds both the
  AC network (authors+conferences, weighted links, text on both types)
  and the ACP network (authors+conferences+papers, binary links, text on
  papers only).
* :mod:`repro.datagen.toy` -- the hand-sized illustration networks of
  Figs. 1 and 4 for examples and exact-value tests.
"""

from repro.datagen.dblp import (
    AREAS,
    CONFERENCES_BY_AREA,
    DblpCorpus,
    FourAreaConfig,
    build_ac_network,
    build_acp_network,
    generate_corpus,
    ground_truth_labels,
)
from repro.datagen.toy import (
    fig4_network,
    fig4_theta,
    political_forum_network,
    political_forum_truth,
)
from repro.datagen.weather import (
    WeatherConfig,
    WeatherNetwork,
    generate_weather_network,
)

__all__ = [
    "AREAS",
    "CONFERENCES_BY_AREA",
    "DblpCorpus",
    "FourAreaConfig",
    "WeatherConfig",
    "WeatherNetwork",
    "build_ac_network",
    "build_acp_network",
    "fig4_network",
    "fig4_theta",
    "generate_corpus",
    "generate_weather_network",
    "ground_truth_labels",
    "political_forum_network",
    "political_forum_truth",
]
