"""Area vocabularies for the synthetic four-area bibliographic corpus.

Each research area gets a characteristic term list; a shared pool of
generic academic terms is mixed into every title so the areas overlap the
way real paper titles do.  Term lists are deliberately plain ASCII, one
token per entry.
"""

from __future__ import annotations

DB_TERMS = (
    "query", "database", "relational", "transaction", "index",
    "join", "sql", "storage", "schema", "xml",
    "optimization", "concurrency", "recovery", "view", "stream",
    "spatial", "temporal", "warehouse", "integration", "tuple",
    "buffer", "btree", "olap", "distributed", "partitioning",
)

DM_TERMS = (
    "mining", "pattern", "frequent", "itemset", "association",
    "outlier", "anomaly", "clustering", "classification", "stream",
    "graph", "subgraph", "sequence", "episode", "correlation",
    "dense", "summarization", "discovery", "scalable", "sampling",
    "lattice", "rule", "pruning", "transactional", "motif",
)

IR_TERMS = (
    "retrieval", "search", "ranking", "relevance", "document",
    "term", "tfidf", "feedback", "web", "crawl",
    "indexing", "snippet", "question", "answering", "language",
    "translation", "query", "expansion", "evaluation", "precision",
    "recall", "link", "anchor", "pagerank", "corpus",
)

ML_TERMS = (
    "learning", "neural", "network", "kernel", "bayesian",
    "inference", "gradient", "regression", "classification", "svm",
    "boosting", "ensemble", "markov", "hidden", "latent",
    "variational", "reinforcement", "generalization", "margin", "feature",
    "selection", "probabilistic", "gaussian", "semisupervised", "manifold",
)

COMMON_TERMS = (
    "efficient", "approach", "model", "analysis", "framework",
    "system", "novel", "large", "scale", "data",
    "method", "algorithm", "fast", "robust", "adaptive",
    "study", "evaluation", "towards", "improved", "effective",
)

AREA_TERM_LISTS = (DB_TERMS, DM_TERMS, IR_TERMS, ML_TERMS)
"""Per-area characteristic vocabularies, indexed by area id."""


def full_vocabulary() -> tuple[str, ...]:
    """Every distinct term across areas and the common pool."""
    seen: dict[str, None] = {}
    for terms in (*AREA_TERM_LISTS, COMMON_TERMS):
        for term in terms:
            seen.setdefault(term, None)
    return tuple(seen)
