"""Hand-sized illustration networks from the paper's figures.

* :func:`fig4_network` -- the 7-object bibliographic micro-network of
  Fig. 4, with the exact membership vectors printed in the figure.  Used
  by tests that pin the feature-function values the paper reports and by
  the quickstart example.
* :func:`political_forum_network` -- the Fig. 1 motivating scenario:
  users, blogs, books, friendship and like/write relations, with text
  attributes that are *incomplete* (not every user states an interest).
"""

from __future__ import annotations

import numpy as np

from repro.hin.attributes import TextAttribute
from repro.hin.builder import NetworkBuilder
from repro.hin.network import HeterogeneousNetwork

FIG4_MEMBERSHIPS = {
    "paper-1": np.array([5 / 6, 1 / 12, 1 / 12]),
    "venue-2": np.array([7 / 8, 1 / 16, 1 / 16]),
    "author-3": np.array([7 / 8, 1 / 16, 1 / 16]),
    "author-4": np.array([1 / 3, 1 / 3, 1 / 3]),
    "author-5": np.array([1 / 16, 1 / 16, 7 / 8]),
    "paper-6": np.array([1 / 12, 5 / 6, 1 / 12]),
    "paper-7": np.array([1 / 12, 1 / 12, 5 / 6]),
}
"""The membership vectors shown in Fig. 4 (3 clusters, 7 objects)."""


def fig4_network() -> HeterogeneousNetwork:
    """The Fig. 4 micro-network.

    Relations: ``write(author, paper)`` (gamma_1),
    ``published_by(paper, venue)`` (gamma_2),
    ``written_by(paper, author)`` (gamma_3).  Out-links drawn in the
    figure: paper-1 to venue-2 (published_by), paper-1 to authors 3/4/5
    (written_by), author-4 to papers 1/6/7 (write).  All weights 1.
    """
    builder = NetworkBuilder()
    builder.object_type("paper").object_type("author").object_type("venue")
    builder.relation("write", "author", "paper")
    builder.relation("published_by", "paper", "venue")
    builder.relation("written_by", "paper", "author")
    builder.node("paper-1", "paper")
    builder.node("venue-2", "venue")
    builder.node("author-3", "author")
    builder.node("author-4", "author")
    builder.node("author-5", "author")
    builder.node("paper-6", "paper")
    builder.node("paper-7", "paper")
    builder.link("paper-1", "venue-2", "published_by")
    builder.link("paper-1", "author-3", "written_by")
    builder.link("paper-1", "author-4", "written_by")
    builder.link("paper-1", "author-5", "written_by")
    builder.link("author-4", "paper-1", "write")
    builder.link("author-4", "paper-6", "write")
    builder.link("author-4", "paper-7", "write")
    return builder.build()


def fig4_theta(network: HeterogeneousNetwork) -> np.ndarray:
    """The Fig. 4 membership matrix in the network's node-index order."""
    return np.stack(
        [FIG4_MEMBERSHIPS[node] for node in network.node_ids]
    )


def political_forum_network() -> HeterogeneousNetwork:
    """The Fig. 1 motivating example, sized up just enough to cluster.

    Two political camps ("green" and "purple").  Users befriend both
    camps (friendship is noisy), but like books and write blogs mostly
    inside their camp (those links are reliable) -- the exact situation
    where learned link strengths matter.  Only some users carry profile
    text; books and blogs always do.
    """
    camp_terms = (
        ["environment", "climate", "renewable", "conservation", "green"],
        ["liberty", "market", "deregulation", "enterprise", "tax"],
    )
    text = TextAttribute("text")
    builder = NetworkBuilder()
    builder.object_type("user").object_type("blog").object_type("book")
    builder.relation("friend", "user", "user")
    builder.add_paired_relation(
        "writes", "user", "blog", inverse="written_by"
    )
    builder.add_paired_relation("likes", "user", "book", inverse="liked_by")

    rng = np.random.default_rng(20120831)  # VLDB'12 conference date
    users_per_camp = 8
    for camp in range(2):
        for u in range(users_per_camp):
            user = f"user{camp}_{u}"
            builder.node(user, "user")
            if u % 2 == 0:  # half the users have profile text
                text.add_tokens(
                    user,
                    rng.choice(camp_terms[camp], size=3).tolist(),
                )
        for b in range(4):
            blog = f"blog{camp}_{b}"
            builder.node(blog, "blog")
            text.add_tokens(
                blog, rng.choice(camp_terms[camp], size=6).tolist()
            )
            book = f"book{camp}_{b}"
            builder.node(book, "book")
            text.add_tokens(
                book, rng.choice(camp_terms[camp], size=6).tolist()
            )
    for camp in range(2):
        for u in range(users_per_camp):
            user = f"user{camp}_{u}"
            # reliable in-camp behaviour
            builder.link_paired(user, f"blog{camp}_{u % 4}", "writes")
            builder.link_paired(user, f"book{camp}_{u % 4}", "likes")
            builder.link_paired(
                user, f"book{camp}_{(u + 1) % 4}", "likes"
            )
            # noisy friendships: half in-camp, half across camps
            friend_same = f"user{camp}_{(u + 1) % users_per_camp}"
            friend_other = f"user{1 - camp}_{(u + 2) % users_per_camp}"
            builder.link(user, friend_same, "friend")
            builder.link(friend_same, user, "friend")
            builder.link(user, friend_other, "friend")
            builder.link(friend_other, user, "friend")
    builder.attribute(text)
    return builder.build()


def political_forum_truth(
    network: HeterogeneousNetwork,
) -> dict[str, int]:
    """Ground-truth camp per node (parsed from the generated ids)."""
    labels: dict[str, int] = {}
    for node in network.node_ids:
        name = str(node)
        digit = name.replace("user", "").replace("blog", "").replace(
            "book", ""
        )
        labels[node] = int(digit.split("_")[0])
    return labels
