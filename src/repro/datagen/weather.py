"""Synthetic weather sensor network generator (Appendix C).

Builds a network of temperature (T) and precipitation (P) sensors:

* **Locations** -- uniform in the unit disc around a central point.
* **Weather patterns** -- ``K`` patterns, each a Gaussian over the
  (temperature, precipitation) plane; the disc is partitioned into ``K``
  equal-*area* concentric rings (boundaries at ``sqrt(k / K)``), ring
  ``k`` "owned" by pattern ``k``.  Equal area keeps the ring populations
  balanced under uniform sensor placement, which matches the cluster
  balance the paper's accuracy levels imply.
* **Cluster membership** -- each sensor's soft membership is the
  normalized *reciprocal distance* from its radius to the nearby ring
  centres.  Following Section 5.1, temperature sensors spread mass over
  their 2 nearest rings ("less noisy") and precipitation sensors over 3
  ("more noisy").
* **Links** -- each sensor gets out-links to its ``k`` nearest
  neighbours *of each type* under geo-distance, yielding the four
  relations ``<T,T>, <T,P>, <P,T>, <P,P>``.
* **Observations** -- ``n_observations`` draws per sensor; each draw
  samples a pattern from the sensor's membership, then samples the
  pattern's Gaussian in the sensor's own dimension only (temperature for
  T sensors, precipitation for P sensors) -- the attributes are
  *incomplete by construction*.

The two experimental settings of Section 5.1:

* Setting 1: pattern means ``(1,1), (2,2), (3,3), (4,4)``, std 0.2.
* Setting 2: pattern means ``(1,1), (-1,1), (-1,-1), (1,-1)``, std 0.2
  (resolvable only by combining both attributes).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ConfigError
from repro.hin.attributes import NumericAttribute
from repro.hin.builder import NetworkBuilder
from repro.hin.network import HeterogeneousNetwork

RELATION_TT = "tt"
RELATION_TP = "tp"
RELATION_PT = "pt"
RELATION_PP = "pp"
TEMPERATURE_TYPE = "temperature_sensor"
PRECIPITATION_TYPE = "precipitation_sensor"
TEMPERATURE_ATTR = "temperature"
PRECIPITATION_ATTR = "precipitation"


def setting1_means(n_clusters: int = 4) -> np.ndarray:
    """Pattern means of Setting 1: (1,1) ... (K,K)."""
    return np.asarray(
        [[float(k + 1), float(k + 1)] for k in range(n_clusters)]
    )


def setting2_means() -> np.ndarray:
    """Pattern means of Setting 2: the four quadrant corners."""
    return np.asarray(
        [[1.0, 1.0], [-1.0, 1.0], [-1.0, -1.0], [1.0, -1.0]]
    )


@dataclass(frozen=True, slots=True)
class WeatherConfig:
    """Generator inputs (the Appendix C parameter list).

    Parameters
    ----------
    n_temperature, n_precipitation:
        Sensor counts per type (``#T``, ``#P``).
    k_neighbors:
        Nearest neighbours linked per *type* (the paper links 5 per type,
        10 in total).
    pattern_means:
        ``(K, 2)`` array of pattern means over (temperature, precip).
    pattern_std:
        Per-dimension standard deviation of every pattern (the paper
        uses 0.2 with zero correlation).
    n_observations:
        Observations sampled per sensor (paper: 1, 5 or 20).
    temperature_regions, precipitation_regions:
        How many nearest ring centres receive membership mass (paper:
        2 for T, 3 for P).
    seed:
        RNG seed.
    """

    n_temperature: int = 1000
    n_precipitation: int = 250
    k_neighbors: int = 5
    pattern_means: np.ndarray = field(default_factory=setting1_means)
    pattern_std: float = 0.2
    n_observations: int = 5
    temperature_regions: int = 2
    precipitation_regions: int = 3
    seed: int | None = None

    def __post_init__(self) -> None:
        if self.n_temperature < 1 or self.n_precipitation < 1:
            raise ConfigError("need at least one sensor of each type")
        if self.k_neighbors < 1:
            raise ConfigError(
                f"k_neighbors must be >= 1, got {self.k_neighbors}"
            )
        means = np.asarray(self.pattern_means, dtype=np.float64)
        if means.ndim != 2 or means.shape[1] != 2:
            raise ConfigError(
                f"pattern_means must be (K, 2), got {means.shape}"
            )
        object.__setattr__(self, "pattern_means", means)
        if self.pattern_std <= 0:
            raise ConfigError(
                f"pattern_std must be positive, got {self.pattern_std}"
            )
        if self.n_observations < 0:
            raise ConfigError(
                f"n_observations must be >= 0, got {self.n_observations}"
            )
        if self.temperature_regions < 1 or self.precipitation_regions < 1:
            raise ConfigError("region spreads must be >= 1")

    @property
    def n_clusters(self) -> int:
        return int(np.asarray(self.pattern_means).shape[0])


def weather_xxl_config(
    seed: int | None = 0, n_observations: int = 10
) -> WeatherConfig:
    """The ~100k-node benchmark scale (ROADMAP: grown toward real
    DBLP proportions): 64k temperature + 32k precipitation sensors,
    10 neighbours per type.

    Generation is feasible because the kNN link pass is chunked and
    ``argpartition``-based (see :func:`_add_knn_links`); expect a few
    tens of seconds of generation and ~2M links.  Benchmarks register
    this scale behind an opt-in flag so default runs stay fast.
    """
    return WeatherConfig(
        n_temperature=65536,
        n_precipitation=32768,
        k_neighbors=10,
        n_observations=n_observations,
        seed=seed,
    )


@dataclass(frozen=True)
class WeatherNetwork:
    """Generator output: the network plus generation-time ground truth.

    Attributes
    ----------
    network:
        The heterogeneous sensor network (4 relations, 2 attributes).
    true_labels:
        ``{sensor_id: ring_index}`` hard ground truth (the ring the
        sensor's radius falls into).
    true_theta:
        ``(n, K)`` soft ground-truth memberships in node-index order.
    locations:
        ``(n, 2)`` sensor coordinates in node-index order.
    config:
        The generating configuration.
    """

    network: HeterogeneousNetwork
    true_labels: dict[str, int]
    true_theta: np.ndarray
    locations: np.ndarray
    config: WeatherConfig

    def labels_array(self) -> np.ndarray:
        """Hard labels in node-index order."""
        return np.asarray(
            [
                self.true_labels[node]
                for node in self.network.node_ids
            ],
            dtype=np.int64,
        )


def generate_weather_network(config: WeatherConfig) -> WeatherNetwork:
    """Run the Appendix C generation recipe (see module docstring)."""
    rng = np.random.default_rng(config.seed)
    k_clusters = config.n_clusters
    n_t = config.n_temperature
    n_p = config.n_precipitation
    n = n_t + n_p

    # --- locations: uniform in the unit disc -------------------------
    radii = np.sqrt(rng.random(n))
    angles = rng.random(n) * 2.0 * np.pi
    locations = np.column_stack(
        (radii * np.cos(angles), radii * np.sin(angles))
    )

    # --- ring memberships --------------------------------------------
    # equal-area rings: boundaries at sqrt(k/K); since radius = sqrt(U)
    # with U uniform, radius^2 is uniform and floor(radius^2 K) is the
    # (balanced) ring index
    boundaries = np.sqrt(np.arange(k_clusters + 1) / k_clusters)
    ring_centers = 0.5 * (boundaries[:-1] + boundaries[1:])
    ring_of = np.minimum(
        (radii**2 * k_clusters).astype(np.int64), k_clusters - 1
    )
    spreads = np.where(
        np.arange(n) < n_t,
        config.temperature_regions,
        config.precipitation_regions,
    )
    true_theta = _reciprocal_distance_memberships(
        radii, ring_centers, spreads
    )

    # --- node naming: temperature sensors first ----------------------
    names = [f"T{i}" for i in range(n_t)] + [f"P{i}" for i in range(n_p)]
    types = [TEMPERATURE_TYPE] * n_t + [PRECIPITATION_TYPE] * n_p

    builder = NetworkBuilder()
    builder.object_type(TEMPERATURE_TYPE)
    builder.object_type(PRECIPITATION_TYPE)
    builder.relation(RELATION_TT, TEMPERATURE_TYPE, TEMPERATURE_TYPE)
    builder.relation(RELATION_TP, TEMPERATURE_TYPE, PRECIPITATION_TYPE)
    builder.relation(RELATION_PT, PRECIPITATION_TYPE, TEMPERATURE_TYPE)
    builder.relation(RELATION_PP, PRECIPITATION_TYPE, PRECIPITATION_TYPE)
    for name, type_name in zip(names, types):
        builder.node(name, type_name)

    # --- kNN links per target type ------------------------------------
    t_slice = np.arange(n_t)
    p_slice = np.arange(n_t, n)
    _add_knn_links(
        builder, names, locations, t_slice, t_slice,
        RELATION_TT, config.k_neighbors,
    )
    _add_knn_links(
        builder, names, locations, t_slice, p_slice,
        RELATION_TP, config.k_neighbors,
    )
    _add_knn_links(
        builder, names, locations, p_slice, t_slice,
        RELATION_PT, config.k_neighbors,
    )
    _add_knn_links(
        builder, names, locations, p_slice, p_slice,
        RELATION_PP, config.k_neighbors,
    )

    # --- observations --------------------------------------------------
    means = np.asarray(config.pattern_means)
    temperature = NumericAttribute(TEMPERATURE_ATTR)
    precipitation = NumericAttribute(PRECIPITATION_ATTR)
    for i in range(n):
        if config.n_observations == 0:
            continue
        patterns = rng.choice(
            k_clusters, size=config.n_observations, p=true_theta[i]
        )
        dimension = 0 if i < n_t else 1
        values = rng.normal(
            means[patterns, dimension],
            config.pattern_std,
        )
        attribute = temperature if i < n_t else precipitation
        attribute.add_values(names[i], values.tolist())
    builder.attribute(temperature).attribute(precipitation)

    network = builder.build()
    true_labels = {
        name: int(ring) for name, ring in zip(names, ring_of)
    }
    return WeatherNetwork(
        network=network,
        true_labels=true_labels,
        true_theta=true_theta,
        locations=locations,
        config=config,
    )


def _reciprocal_distance_memberships(
    radii: np.ndarray,
    ring_centers: np.ndarray,
    spreads: np.ndarray,
) -> np.ndarray:
    """theta_ik  propto  1 / d(radius_i, ring_center_k), top-``spread_i``.

    Distances are to ring centres along the radial axis; each sensor
    keeps only its ``spread`` nearest rings (2 for T, 3 for P per the
    paper) and the rest get zero mass.
    """
    k = ring_centers.shape[0]
    distances = np.abs(radii[:, None] - ring_centers[None, :])
    reciprocal = 1.0 / (distances + 1e-6)
    # per-row distance ranks (stable, matching a per-node argsort):
    # ring k gets mass iff its rank is below the node's spread
    order = np.argsort(distances, axis=1, kind="stable")
    ranks = np.empty_like(order)
    np.put_along_axis(
        ranks, order, np.broadcast_to(np.arange(k), order.shape), axis=1
    )
    theta = np.where(ranks < spreads[:, None], reciprocal, 0.0)
    return theta / theta.sum(axis=1, keepdims=True)


# rows of the chunked kNN distance block (bounds peak memory to
# ~_KNN_BLOCK_ELEMENTS floats regardless of target-set size)
_KNN_BLOCK_ELEMENTS = 8_000_000
# above this many source-target pairs the dense distance sweep loses
# to a KD-tree: ~100k-node scales would need ~10^10 pair distances
_KNN_BRUTE_FORCE_PAIRS = 25_000_000


def _add_knn_links(
    builder: NetworkBuilder,
    names: list[str],
    locations: np.ndarray,
    sources: np.ndarray,
    targets: np.ndarray,
    relation: str,
    k_neighbors: int,
) -> None:
    """Out-links from each source to its k nearest targets (binary).

    Small instances run a chunked, vectorized distance sweep
    (``argpartition`` over a bounded block, one slack slot for the
    excluded self); large ones -- the ~100k-node ``weather_xxl``
    scale, where the dense sweep would touch ~10^10 pairs -- switch to
    a :class:`scipy.spatial.cKDTree` query, ``O(n log n)`` overall.
    Both paths rank neighbours identically except on exact distance
    ties (measure-zero for continuous RNG placements).
    """
    target_locations = locations[targets]
    n_targets = targets.shape[0]
    take = min(k_neighbors + 1, n_targets)
    if sources.shape[0] * n_targets > _KNN_BRUTE_FORCE_PAIRS:
        from scipy.spatial import cKDTree

        ranked_distances, positions = cKDTree(target_locations).query(
            locations[sources], k=take
        )
        if take == 1:  # scipy squeezes the k axis
            ranked_distances = ranked_distances[:, None]
            positions = positions[:, None]
        # missing neighbours come back as index n_targets with an
        # infinite distance; clip so the fancy index stays in bounds
        # (the finite mask drops them at emission)
        ranked = targets[np.minimum(positions, n_targets - 1)]
        _emit_knn_links(
            builder,
            names,
            relation,
            k_neighbors,
            sources.tolist(),
            ranked.tolist(),
            np.isfinite(ranked_distances).tolist(),
        )
        return
    chunk = max(1, _KNN_BLOCK_ELEMENTS // max(1, n_targets))
    for start in range(0, sources.shape[0], chunk):
        block = sources[start : start + chunk]
        deltas = (
            target_locations[None, :, :]
            - locations[block][:, None, :]
        )
        distances = np.einsum("snd,snd->sn", deltas, deltas)
        nearest = np.argpartition(distances, take - 1, axis=1)[
            :, :take
        ]
        nearest_distances = np.take_along_axis(
            distances, nearest, axis=1
        )
        order = np.argsort(nearest_distances, axis=1, kind="stable")
        _emit_knn_links(
            builder,
            names,
            relation,
            k_neighbors,
            block.tolist(),
            targets[
                np.take_along_axis(nearest, order, axis=1)
            ].tolist(),
            np.isfinite(
                np.take_along_axis(nearest_distances, order, axis=1)
            ).tolist(),
        )


def _emit_knn_links(
    builder: NetworkBuilder,
    names: list[str],
    relation: str,
    k_neighbors: int,
    block: list[int],
    ranked_targets: list[list[int]],
    ranked_finite: list[list[bool]],
) -> None:
    """Emit up to ``k_neighbors`` links per source from distance-ranked
    candidate rows, skipping self-links and absent (infinite-distance)
    slots.  Plain-list inputs: per-element numpy scalar access would
    dominate generation at large scales."""
    for row, i in enumerate(block):
        source_name = names[i]
        picked = 0
        for j, finite in zip(ranked_targets[row], ranked_finite[row]):
            if not finite or j == i:
                continue
            builder.link(source_name, names[j], relation, weight=1.0)
            picked += 1
            if picked == k_neighbors:
                break
