"""Synthetic DBLP "four-area" bibliographic corpus and networks.

The paper's real data set (Section 5.1) is a DBLP extract of 20 major
conferences across database (DB), data mining (DM), information retrieval
(IR) and machine learning (ML), with 14,376 papers and 14,475 authors.
This module generates a seeded synthetic stand-in with the structural
properties the clustering algorithm actually exercises (see DESIGN.md,
"Substitutions"):

* 20 conferences, 5 per area, with their real names;
* authors with concentrated-but-mixed area interests (a configurable
  fraction are cross-area, like the paper's Christos Faloutsos case);
* papers written by 1..4 authors; the paper's area is drawn from the
  first author's interest profile; its venue from the area (with a small
  off-area publication probability);
* titles sampled from the area vocabulary mixed with common academic
  terms (short titles: "the observations of the text data is very
  limited (e.g., using text merely from titles)").

Two network views are built from one corpus, matching Section 5.1:

* :func:`build_ac_network` -- authors+conferences; relations
  ``publish_in(A,C)`` / ``published_by(C,A)`` weighted by paper counts
  and ``coauthor(A,A)`` weighted by collaboration counts; the text
  attribute sits on *both* object types (complete attributes).
* :func:`build_acp_network` -- authors+conferences+papers; binary
  relations ``write/written_by`` and ``publish/published_by``; text on
  papers only (incomplete attributes).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.datagen.dblp_vocab import AREA_TERM_LISTS, COMMON_TERMS
from repro.exceptions import ConfigError
from repro.hin.attributes import TextAttribute
from repro.hin.builder import NetworkBuilder
from repro.hin.network import HeterogeneousNetwork

AREAS = ("DB", "DM", "IR", "ML")

CONFERENCES_BY_AREA = {
    "DB": ("SIGMOD", "VLDB", "ICDE", "PODS", "EDBT"),
    "DM": ("KDD", "ICDM", "SDM", "PKDD", "PAKDD"),
    "IR": ("SIGIR", "CIKM", "ECIR", "WSDM", "TREC"),
    "ML": ("ICML", "NIPS", "COLT", "ECML", "UAI"),
}

TITLE_ATTR = "title"


@dataclass(frozen=True, slots=True)
class FourAreaConfig:
    """Corpus generator inputs.

    Parameters
    ----------
    n_authors:
        Total authors across the four areas.
    n_papers:
        Total papers.
    title_length:
        Tokens per title.
    area_concentration:
        Dirichlet concentration of an author's interest profile on the
        home area; higher means purer authors.
    cross_area_fraction:
        Fraction of authors with genuinely mixed profiles.
    off_area_venue_prob:
        Probability a paper is published at a venue outside its area
        (models CIKM-style spread).
    cross_area_coauthor_prob:
        Probability each co-author slot is filled from the whole author
        pool rather than the paper's area.
    external_coauthors_per_author:
        Poisson mean of additional coauthor edges per author drawn from
        the *whole* pool, modeling collaborations on papers outside the
        four-area extract.  These edges exist only in the AC view's
        ``coauthor`` relation (there is no corresponding paper node) and
        are what makes that relation broad-spectrum the way the paper
        observes ("the spectrum of co-authors may often be quite broad",
        Section 5.2.3) *without* polluting the ACP view's exact
        author-paper links.
    common_term_prob:
        Probability each title token comes from the shared academic pool
        instead of the area vocabulary.
    off_topic_term_prob:
        Probability a non-common title token is drawn from a *different*
        area's vocabulary -- real titles share terminology across areas,
        which keeps pure-text clustering from being trivially perfect.
    max_authors_per_paper:
        Papers draw 1..this many authors.
    seed:
        RNG seed.

    Notes
    -----
    The defaults encode two properties of the real four-area DBLP that
    drive the paper's learned strengths: *authors are purer than venues*
    (high ``area_concentration``; venues spread via
    ``off_area_venue_prob`` the way CIKM spans DB/DM/IR), and *coauthor
    links are broad-spectrum*.
    """

    n_authors: int = 1600
    n_papers: int = 1600
    title_length: int = 6
    area_concentration: float = 60.0
    cross_area_fraction: float = 0.05
    off_area_venue_prob: float = 0.1
    cross_area_coauthor_prob: float = 0.2
    external_coauthors_per_author: float = 3.0
    common_term_prob: float = 0.4
    off_topic_term_prob: float = 0.25
    max_authors_per_paper: int = 4
    seed: int | None = None

    def __post_init__(self) -> None:
        if self.n_authors < len(AREAS):
            raise ConfigError(
                f"need at least {len(AREAS)} authors, got {self.n_authors}"
            )
        if self.n_papers < 1:
            raise ConfigError(f"n_papers must be >= 1, got {self.n_papers}")
        if self.title_length < 1:
            raise ConfigError(
                f"title_length must be >= 1, got {self.title_length}"
            )
        if self.area_concentration <= 0:
            raise ConfigError("area_concentration must be positive")
        for name in (
            "cross_area_fraction",
            "off_area_venue_prob",
            "cross_area_coauthor_prob",
            "common_term_prob",
            "off_topic_term_prob",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigError(f"{name} must be in [0, 1], got {value}")
        if self.max_authors_per_paper < 1:
            raise ConfigError("max_authors_per_paper must be >= 1")
        if self.external_coauthors_per_author < 0:
            raise ConfigError(
                "external_coauthors_per_author must be >= 0"
            )


@dataclass(frozen=True)
class Paper:
    """One generated paper."""

    paper_id: str
    area: int
    venue: str
    authors: tuple[str, ...]
    title_tokens: tuple[str, ...]


@dataclass(frozen=True)
class DblpCorpus:
    """Generator output shared by both network views.

    Attributes
    ----------
    papers:
        All generated papers.
    author_area:
        ``{author_id: home_area_index}`` ground truth.
    conference_area:
        ``{conference: area_index}`` ground truth (by construction).
    author_profiles:
        ``{author_id: (4,) interest distribution}`` soft ground truth.
    config:
        The generating configuration.
    """

    papers: tuple[Paper, ...]
    author_area: dict[str, int]
    conference_area: dict[str, int]
    author_profiles: dict[str, np.ndarray]
    config: FourAreaConfig
    external_coauthors: tuple[tuple[str, str], ...] = ()
    """Coauthor pairs from collaborations outside the four-area extract
    (they appear only in the AC view's coauthor relation)."""

    @property
    def authors(self) -> tuple[str, ...]:
        return tuple(self.author_area)

    @property
    def conferences(self) -> tuple[str, ...]:
        return tuple(self.conference_area)

    def paper_area(self, paper_id: str) -> int:
        for paper in self.papers:
            if paper.paper_id == paper_id:
                return paper.area
        raise KeyError(f"unknown paper {paper_id!r}")


def generate_corpus(config: FourAreaConfig) -> DblpCorpus:
    """Generate the synthetic four-area corpus (see module docstring)."""
    rng = np.random.default_rng(config.seed)
    n_areas = len(AREAS)

    conference_area: dict[str, int] = {}
    for area_index, area in enumerate(AREAS):
        for conference in CONFERENCES_BY_AREA[area]:
            conference_area[conference] = area_index

    # authors: home areas round-robin so every area is populated
    author_area: dict[str, int] = {}
    author_profiles: dict[str, np.ndarray] = {}
    author_ids = [f"author{i:05d}" for i in range(config.n_authors)]
    for i, author in enumerate(author_ids):
        home = i % n_areas
        author_area[author] = home
        concentration = np.ones(n_areas)
        if rng.random() < config.cross_area_fraction:
            # cross-area author: strong in home, substantial in one other
            other = int(rng.choice([a for a in range(n_areas) if a != home]))
            concentration[home] = config.area_concentration / 2.0
            concentration[other] = config.area_concentration / 3.0
        else:
            concentration[home] = config.area_concentration
        author_profiles[author] = rng.dirichlet(concentration)

    # productivity: a heavy-ish tail so coauthor graphs look plausible
    productivity = rng.pareto(2.5, size=config.n_authors) + 1.0
    authors_by_area: list[list[int]] = [[] for _ in range(n_areas)]
    for i, author in enumerate(author_ids):
        authors_by_area[author_area[author]].append(i)

    papers: list[Paper] = []
    for p in range(config.n_papers):
        first_author_idx = int(
            rng.choice(
                config.n_authors, p=productivity / productivity.sum()
            )
        )
        first_author = author_ids[first_author_idx]
        area = int(rng.choice(n_areas, p=author_profiles[first_author]))
        # co-authors mostly from the same area, sometimes from anywhere
        n_coauthors = int(rng.integers(0, config.max_authors_per_paper))
        team = [first_author_idx]
        area_pool = authors_by_area[area]
        everyone = np.arange(config.n_authors)
        for _ in range(n_coauthors):
            if rng.random() < config.cross_area_coauthor_prob:
                pool = everyone
            else:
                pool = area_pool
            weights = productivity[pool]
            candidate = int(
                rng.choice(pool, p=weights / weights.sum())
            )
            if candidate not in team:
                team.append(candidate)
        # venue: usually in-area
        if rng.random() < config.off_area_venue_prob:
            venue_area = int(
                rng.choice([a for a in range(n_areas) if a != area])
            )
        else:
            venue_area = area
        venue = str(rng.choice(CONFERENCES_BY_AREA[AREAS[venue_area]]))
        tokens = _sample_title(rng, area, config)
        papers.append(
            Paper(
                paper_id=f"paper{p:06d}",
                area=area,
                venue=venue,
                authors=tuple(author_ids[i] for i in team),
                title_tokens=tokens,
            )
        )

    # out-of-extract collaborations: broad-spectrum coauthor edges that
    # exist only in the AC view (no paper node inside the extract)
    external: list[tuple[str, str]] = []
    if config.external_coauthors_per_author > 0:
        counts = rng.poisson(
            config.external_coauthors_per_author, size=config.n_authors
        )
        for i, n_external in enumerate(counts):
            for _ in range(int(n_external)):
                j = int(rng.integers(config.n_authors))
                if j != i:
                    external.append((author_ids[i], author_ids[j]))

    return DblpCorpus(
        papers=tuple(papers),
        author_area=author_area,
        conference_area=conference_area,
        author_profiles=author_profiles,
        config=config,
        external_coauthors=tuple(external),
    )


def _sample_title(
    rng: np.random.Generator, area: int, config: FourAreaConfig
) -> tuple[str, ...]:
    n_areas = len(AREA_TERM_LISTS)
    tokens: list[str] = []
    for _ in range(config.title_length):
        if rng.random() < config.common_term_prob:
            tokens.append(str(rng.choice(COMMON_TERMS)))
            continue
        if rng.random() < config.off_topic_term_prob:
            source = int(
                rng.choice([a for a in range(n_areas) if a != area])
            )
        else:
            source = area
        tokens.append(str(rng.choice(AREA_TERM_LISTS[source])))
    return tuple(tokens)


# ----------------------------------------------------------------------
# network views
# ----------------------------------------------------------------------

AC_RELATIONS = ("publish_in", "published_by", "coauthor")
ACP_RELATIONS = ("write", "written_by", "publish", "published_by")


def build_ac_network(corpus: DblpCorpus) -> HeterogeneousNetwork:
    """The DBLP Four-area **AC network** (Section 5.1a).

    Authors and conferences; ``publish_in``/``published_by`` weighted by
    paper counts, ``coauthor`` weighted by collaboration counts; the text
    of every title a node ever wrote/published is attached to it.
    """
    builder = NetworkBuilder()
    builder.object_type("author").object_type("conference")
    builder.add_paired_relation(
        "publish_in", "author", "conference", inverse="published_by"
    )
    builder.relation("coauthor", "author", "author")
    for conference in corpus.conferences:
        builder.node(conference, "conference")
    for author in corpus.authors:
        builder.node(author, "author")

    publish_counts: dict[tuple[str, str], float] = {}
    coauthor_counts: dict[tuple[str, str], float] = {}
    text = TextAttribute(TITLE_ATTR)
    for paper in corpus.papers:
        for author in paper.authors:
            key = (author, paper.venue)
            publish_counts[key] = publish_counts.get(key, 0.0) + 1.0
            text.add_tokens(author, paper.title_tokens)
        text.add_tokens(paper.venue, paper.title_tokens)
        for a in paper.authors:
            for b in paper.authors:
                if a != b:
                    coauthor_counts[(a, b)] = (
                        coauthor_counts.get((a, b), 0.0) + 1.0
                    )
    for a, b in corpus.external_coauthors:
        coauthor_counts[(a, b)] = coauthor_counts.get((a, b), 0.0) + 1.0
        coauthor_counts[(b, a)] = coauthor_counts.get((b, a), 0.0) + 1.0

    for (author, venue), count in publish_counts.items():
        builder.link_paired(author, venue, "publish_in", weight=count)
    for (a, b), count in coauthor_counts.items():
        builder.link(a, b, "coauthor", weight=count)
    builder.attribute(text)
    return builder.build()


def build_acp_network(corpus: DblpCorpus) -> HeterogeneousNetwork:
    """The DBLP Four-area **ACP network** (Section 5.1b).

    Authors, conferences and papers; binary ``write``/``written_by`` and
    ``publish``/``published_by`` links; titles attached to papers only.
    """
    builder = NetworkBuilder()
    builder.object_type("author")
    builder.object_type("conference")
    builder.object_type("paper")
    builder.add_paired_relation(
        "write", "author", "paper", inverse="written_by"
    )
    builder.add_paired_relation(
        "publish", "conference", "paper", inverse="published_by"
    )
    for conference in corpus.conferences:
        builder.node(conference, "conference")
    for author in corpus.authors:
        builder.node(author, "author")
    text = TextAttribute(TITLE_ATTR)
    for paper in corpus.papers:
        builder.node(paper.paper_id, "paper")
        text.add_tokens(paper.paper_id, paper.title_tokens)
        for author in paper.authors:
            builder.link_paired(author, paper.paper_id, "write")
        builder.link_paired(paper.venue, paper.paper_id, "publish")
    builder.attribute(text)
    return builder.build()


def ground_truth_labels(
    corpus: DblpCorpus, network: HeterogeneousNetwork
) -> dict[str, int]:
    """``{node_id: area}`` for every node of the given network view."""
    labels: dict[str, int] = {}
    paper_area = {p.paper_id: p.area for p in corpus.papers}
    for node in network.node_ids:
        if node in corpus.author_area:
            labels[node] = corpus.author_area[node]
        elif node in corpus.conference_area:
            labels[node] = corpus.conference_area[node]
        elif node in paper_area:
            labels[node] = paper_area[node]
        else:  # pragma: no cover - defensive
            raise KeyError(f"node {node!r} has no ground truth")
    return labels
